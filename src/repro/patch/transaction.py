"""Transactional instrumentation commit: journal, two-phase apply,
verified rollback.

Dyninst's central robustness promise (paper §3.3–3.4) is that
instrumentation never leaves the mutatee corrupted.  The dynamic commit
path writes springboards, trampolines, a data area and trap redirects
in several steps, any of which can fail — springboard exhaustion, an
undecodable relocation target, a memory fault, or (in tests) an
injected fault from :mod:`repro.faults`.  This module makes the whole
application atomic from the mutatee's point of view:

* **phase 1 (journal)** — before anything is written, a
  :class:`WriteAheadJournal` captures every memory page the commit will
  touch (springboard spans, the trampoline region, the data area),
  plus the trap-redirect map and the executable-range list.  Page
  records distinguish *existing* pages (content captured) from pages
  the commit will *create* (rollback unmaps them);
* **phase 2 (apply)** — the writes happen, each followed by an explicit
  trace-cache invalidation exactly as before;
* **rollback** — if any phase-2 step raises, every journaled page is
  restored bit-identically, created pages are unmapped, the trap map
  and exec-range list are reset, every touched span is invalidated
  again (compiled closures and traces never execute stale bytes), and
  the restore is **verified** by re-reading each page against the
  journal.  The original exception then propagates.

Removal rides the same journal, with one extra rule (the shared-
springboard blind spot): a span whose current bytes no longer match
this patch's springboard was overwritten by a *later* patch — restoring
our pre-patch bytes would orphan that survivor, so the span is skipped
(and counted under ``patch.remove.skipped_spans``).  Trap redirects are
only retired when they still point at our trampoline.

Telemetry: ``commit.journal_bytes``, ``commit.applies``,
``commit.rollbacks``, ``commit.removes``, ``patch.remove.skipped_spans``
(see docs/TELEMETRY.md).
"""

from __future__ import annotations

from .. import faults, telemetry
from ..errors import ReproError


class TransactionError(ReproError, RuntimeError):
    """The commit transaction could not guarantee consistency."""


class RollbackVerifyError(TransactionError):
    """Post-rollback verification found state differing from the
    journal — the one condition that may not pass silently."""


class WriteAheadJournal:
    """Page-granular undo log for one transaction on a live machine.

    The machine is duck-typed (anything exposing the simulator debug
    port plus ``mem.capture_pages``/``restore_pages``): the patch layer
    never imports the simulator.
    """

    def __init__(self, machine):
        self.machine = machine
        #: page index -> content at first capture (None = did not exist)
        self._pages: dict[int, bytes | None] = {}
        #: [lo, hi) spans the transaction may write
        self.spans: list[tuple[int, int]] = []
        self._traps = dict(machine.trap_redirects)
        self._exec = list(machine.exec_ranges)
        #: bytes of pre-image captured (the ``commit.journal_bytes``
        #: counter's contribution)
        self.journal_bytes = 0

    def will_touch(self, base: int, size: int) -> None:
        """Journal the current content of every page overlapping
        ``[base, base+size)`` before the transaction writes there."""
        faults.site("patch.txn.journal")
        if size <= 0:
            return
        self.spans.append((base, base + size))
        for idx, content in self.machine.mem.capture_pages(base, size):
            if idx not in self._pages:
                self._pages[idx] = content
                if content is not None:
                    self.journal_bytes += len(content)

    def rollback(self) -> None:
        """Restore everything journaled, bit-identically, and verify.

        Restores memory pages (recreating deleted ones, unmapping ones
        the transaction created), the trap-redirect map, and the
        exec-range list + write watch; then invalidates every touched
        span so no compiled closure or trace survives pointing at
        restored bytes; then re-reads each page against the journal.
        """
        m = self.machine
        m.mem.restore_pages(sorted(self._pages.items()))
        m.trap_redirects.clear()
        m.trap_redirects.update(self._traps)
        m.exec_ranges[:] = self._exec
        m.mem.set_write_watch(m.exec_ranges, m._code_written)
        for lo, hi in self.spans:
            m.invalidate_code_range(lo, hi - lo)
        self.verify()
        rec = telemetry.current()
        if rec.enabled:
            rec.count("commit.rollbacks")

    def verify(self) -> None:
        """Re-read every journaled page; raise
        :class:`RollbackVerifyError` on any divergence."""
        mem = self.machine.mem
        for idx, content in self._pages.items():
            current = mem.page_content(idx)
            if current != content:
                raise RollbackVerifyError(
                    f"rollback verification failed: page {idx:#x} "
                    f"differs from its journal record")


def apply_result(result, machine) -> None:
    """Two-phase commit of a built ``PatchResult`` onto *machine*.

    Either every springboard, the trampoline region, the data area and
    the trap redirects are installed, or — if any step raises — the
    machine is rolled back to its pre-call architectural state
    bit-identically and the exception propagates.
    """
    rec = telemetry.current()
    journal = WriteAheadJournal(machine)
    for lo, hi in result._text_spans():
        journal.will_touch(lo, hi - lo)
    if result.trampoline_code:
        journal.will_touch(result.trampoline_base,
                           len(result.trampoline_code))
    journal.will_touch(result.data_base, result.data_size)
    if rec.enabled:
        rec.count("commit.journal_bytes", journal.journal_bytes)
    try:
        faults.site("patch.txn.text")
        for lo, hi in result._text_spans():
            off = lo - result.text_base
            machine.write_mem(lo, result.text[off:off + (hi - lo)])
            machine.invalidate_code_range(lo, hi - lo)
        if result.trampoline_code:
            faults.site("patch.txn.trampoline")
            machine.add_exec_range(
                result.trampoline_base,
                result.trampoline_base + len(result.trampoline_code))
            machine.write_mem(result.trampoline_base,
                              result.trampoline_code)
            machine.invalidate_code_range(
                result.trampoline_base, len(result.trampoline_code))
        faults.site("patch.txn.data")
        machine.mem.map_region(result.data_base, result.data_size)
        faults.site("patch.txn.traps")
        machine.trap_redirects.update(result.trap_map)
    except BaseException:
        journal.rollback()
        raise
    if rec.enabled:
        rec.count("commit.applies")


def remove_result(result, machine) -> tuple[int, int]:
    """Transactionally remove a ``PatchResult`` from *machine*.

    Returns ``(restored, skipped)`` span counts.  Spans whose current
    bytes are not this patch's springboard anymore were overwritten by
    a later patch and are left alone (the shared-springboard rule);
    trap redirects are retired only where they still point at this
    patch's trampoline.  A failure mid-removal rolls the machine back
    to the fully instrumented state.
    """
    journal = WriteAheadJournal(machine)
    for lo, hi in result._text_spans():
        journal.will_touch(lo, hi - lo)
    restored = skipped = 0
    try:
        faults.site("patch.txn.restore")
        for lo, hi in result._text_spans():
            off = lo - result.text_base
            expected = result.text[off:off + (hi - lo)]
            if machine.read_mem(lo, hi - lo) != bytes(expected):
                skipped += 1
                continue
            machine.write_mem(
                lo, result.original_text[off:off + (hi - lo)])
            machine.invalidate_code_range(lo, hi - lo)
            restored += 1
        faults.site("patch.txn.untrap")
        for site_addr, target in result.trap_map.items():
            if machine.trap_redirects.get(site_addr) == target:
                machine.trap_redirects.pop(site_addr)
    except BaseException:
        journal.rollback()
        raise
    rec = telemetry.current()
    if rec.enabled:
        rec.count("commit.removes")
        if skipped:
            rec.count("patch.remove.skipped_spans", skipped)
    return restored, skipped


__all__ = [
    "RollbackVerifyError", "TransactionError", "WriteAheadJournal",
    "apply_result", "remove_result",
]
