"""Trampoline assembly: preamble + payload + relocated originals +
return jump, laid out at a concrete patch-area address.

Structure (paper §1, "code patching")::

    [far-springboard restore]     ; only when entered via auipc+jalr
    [spill saves]                 ; only when scratch registers are live
    payload (lowered snippets)
    [spill restores]
    relocated original instruction(s)
    jump back to original code    ; unless the originals divert

The back jump is a ``jal x0`` when the site is within ±1 MiB, otherwise
an ``ebreak`` resolved through the trap-redirect map.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..riscv.encoder import encode_fields
from ..riscv.encoding import fits_signed
from ..riscv.opcodes import by_mnemonic
from .relocate import Item, RelocatedCode

Lowered = tuple[str, dict[str, int]]


@dataclass
class BuiltTrampoline:
    """Final trampoline image."""

    address: int
    code: bytes
    #: trampoline-internal trap sites: absolute ebreak addr -> target
    trap_entries: dict[int, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.code)


class TrampolineBuilder:
    """Two-pass layout of symbolic trampoline items at a base address."""

    def __init__(self, base: int):
        self.base = base
        self._items: list[Item] = []
        self._stubs: dict[int, int] = {}
        self._labels = 0

    def add_instructions(self, seq: list[Lowered]) -> None:
        for mn, fields in seq:
            self._items.append(("i", mn, fields))

    # -- local labels (edge-instrumentation trampolines) -----------------

    def new_label(self) -> int:
        """Allocate a trampoline-local label id."""
        self._labels += 1
        return -self._labels  # negative ids: local labels

    def place_label(self, label: int) -> None:
        self._items.append(("label", label))

    def add_branch_local(self, mn: str, fields: dict[str, int],
                         label: int) -> None:
        """Conditional branch to a local label."""
        self._items.append(("branch_local", mn, fields, label))

    def add_relocated(self, rc: RelocatedCode) -> None:
        offset = max(self._stubs) + 1 if self._stubs else 0
        for item in rc.items:
            if item[0] == "branch_stub":
                _, mn, bf, sid = item
                self._items.append(("branch_stub", mn, bf, sid + offset))
            else:
                self._items.append(item)
        for sid, target in rc.stubs.items():
            self._stubs[sid + offset] = target

    def add_jump_abs(self, target: int) -> None:
        self._items.append(("jump_abs", target))

    def add_call_abs(self, target: int, link_reg: int = 1) -> None:
        """auipc+jalr call to an absolute target; the callee returns
        into the trampoline."""
        self._items.append(("call_abs", target, link_reg))

    # -- layout --------------------------------------------------------------

    @staticmethod
    def _item_size(item: Item) -> int:
        if item[0] == "call_abs":
            return 8  # auipc + jalr
        if item[0] == "label":
            return 0
        return 4      # everything else is one 4-byte instruction

    def build(self) -> BuiltTrampoline:
        # Place main items, then one 4-byte stub slot per branch stub.
        sizes = [self._item_size(it) for it in self._items]
        main_size = sum(sizes)
        stub_ids = sorted(self._stubs)
        stub_addr = {
            sid: self.base + main_size + 4 * i
            for i, sid in enumerate(stub_ids)
        }
        label_addr: dict[int, int] = {}
        pc = self.base
        for item, size in zip(self._items, sizes):
            if item[0] == "label":
                label_addr[item[1]] = pc
            pc += size

        code = bytearray()
        traps: dict[int, int] = {}
        pc = self.base
        for item, size in zip(self._items, sizes):
            if item[0] == "label":
                continue
            if item[0] == "i":
                _, mn, fields = item
                code += self._enc(mn, fields)
            elif item[0] == "branch_local":
                _, mn, bf, label = item
                fields = dict(bf)
                fields["imm"] = label_addr[label] - pc
                code += self._enc(mn, fields)
            elif item[0] == "branch_stub":
                _, mn, bf, sid = item
                fields = dict(bf)
                fields["imm"] = stub_addr[sid] - pc
                code += self._enc(mn, fields)
            elif item[0] == "jump_abs":
                code += self._jump_abs(pc, item[1], traps)
            elif item[0] == "call_abs":
                _, target, rd = item
                from ..riscv.materialize import pcrel_hi_lo

                hi, lo = pcrel_hi_lo(target, pc)
                code += self._enc("auipc", {"rd": rd, "imm": hi})
                code += self._enc("jalr", {"rd": rd, "rs1": rd, "imm": lo})
            else:  # pragma: no cover - lowering invariant
                raise ValueError(f"unknown trampoline item {item!r}")
            pc += size

        for sid in stub_ids:
            code += self._jump_abs(pc, self._stubs[sid], traps)
            pc += 4

        return BuiltTrampoline(self.base, bytes(code), traps)

    def _jump_abs(self, pc: int, target: int,
                  traps: dict[int, int]) -> bytes:
        disp = target - pc
        if fits_signed(disp, 21) and disp % 2 == 0:
            return self._enc("jal", {"rd": 0, "imm": disp})
        traps[pc] = target
        return self._enc("ebreak", {})

    @staticmethod
    def _enc(mn: str, fields: dict[str, int]) -> bytes:
        return encode_fields(by_mnemonic(mn), fields).to_bytes(4, "little")
