"""Static binary rewriting: serialise a PatchResult into a new ELF
(the paper's Figure 1 "static binary instrumentation" flow, and the
feature set of the planned 4Q2025 release).

The rewritten executable carries three extra sections:

* ``.dyninst.text`` — the trampolines (ALLOC+EXECINSTR);
* ``.dyninst.data`` — the instrumentation data area (counters...);
* ``.dyninst.traps`` — the trap-redirect map as (site, target) u64
  pairs, consumed by the loader so worst-case trap springboards work
  (in real Dyninst this role is played by the runtime library).

:func:`load_instrumented` maps a rewritten ELF into a simulator machine
and installs the trap map.
"""

from __future__ import annotations

from ..elf import structs as es
from ..elf.reader import read_elf
from ..elf.writer import ElfImage, SectionImage, write_elf
from ..riscv.assembler import Symbol
from ..symtab.symtab import Symtab
from .patcher import PatchResult

TRAP_SECTION = ".dyninst.traps"
TEXT_SECTION = ".dyninst.text"
DATA_SECTION = ".dyninst.data"


def _trap_blob(trap_map: dict[int, int]) -> bytes:
    out = bytearray()
    for site in sorted(trap_map):
        out += site.to_bytes(8, "little")
        out += trap_map[site].to_bytes(8, "little")
    return bytes(out)


def _parse_trap_blob(blob: bytes) -> dict[int, int]:
    out: dict[int, int] = {}
    for off in range(0, len(blob) - 15, 16):
        site = int.from_bytes(blob[off:off + 8], "little")
        target = int.from_bytes(blob[off + 8:off + 16], "little")
        out[site] = target
    return out


def rewrite(symtab: Symtab, result: PatchResult) -> bytes:
    """Produce the instrumented executable."""
    sections: list[SectionImage] = []
    for region in symtab.regions:
        if region.executable and region.addr == result.text_base:
            data = result.text
        else:
            data = region.data
        mem = region.mem_size if region.mem_size is not None else None
        sh_type = es.SHT_NOBITS if (mem is not None and not data) \
            else es.SHT_PROGBITS
        flags = es.SHF_ALLOC
        if region.executable:
            flags |= es.SHF_EXECINSTR
        else:
            flags |= es.SHF_WRITE
        sections.append(SectionImage(
            region.name, data, region.addr, sh_type=sh_type,
            sh_flags=flags, mem_size=mem,
            align=4 if region.executable else 8))

    if result.trampoline_code:
        sections.append(SectionImage(
            TEXT_SECTION, result.trampoline_code, result.trampoline_base,
            sh_flags=es.SHF_ALLOC | es.SHF_EXECINSTR, align=16))
    sections.append(SectionImage(
        DATA_SECTION, b"\x00" * result.data_size, result.data_base,
        sh_flags=es.SHF_ALLOC | es.SHF_WRITE, align=8))
    if result.trap_map:
        sections.append(SectionImage(
            TRAP_SECTION, _trap_blob(result.trap_map),
            sh_type=es.SHT_PROGBITS, align=8))
    if symtab.lines:
        from ..elf.lines import LINES_SECTION, build_lines_section

        sections.append(SectionImage(
            LINES_SECTION,
            build_lines_section(symtab.lines._map),
            sh_type=es.SHT_PROGBITS, align=8))

    symbols = list(symtab.symbols.values())
    for name, var in result.data_area.variables.items():
        symbols.append(Symbol(
            name=f"dyninst${name}", address=var.address, size=var.size,
            kind="object", section=DATA_SECTION, is_global=True))

    image = ElfImage(
        entry=symtab.entry,
        sections=sections,
        symbols=symbols,
        arch=symtab.isa,
    )
    return write_elf(image)


def load_instrumented(machine, elf_bytes: bytes) -> Symtab:
    """Load a rewritten executable into a simulator machine, installing
    the trap-redirect map.  Returns the Symtab of the new binary."""
    elf = read_elf(elf_bytes)
    symtab = Symtab.from_elf(elf)
    symtab.load_into(machine)
    trap_sec = elf.section(TRAP_SECTION)
    if trap_sec is not None:
        machine.trap_redirects.update(_parse_trap_blob(trap_sec.data))
    return symtab
