"""Reproduction of the paper's §4.3 overhead table (the only
quantitative artifact in the paper).

Paper setup (§4.1/§4.2): a 100x100 double matmul called in a timed loop;
instrumentation increments a counter (1) at the entry of `multiply` and
(2) at the start of each of its basic blocks.  Measured on a 1.4 GHz
SiFive P550 (RISC-V) and an i5-14600T (x86-64, legacy Dyninst engine).

Reproduction mapping (DESIGN.md substitutions):

* RISC-V column — `p550` timing model + dead-register allocation ON;
* x86 column — `x86proxy` timing model + dead-register allocation OFF
  (§4.3 attributes the x86 gap to the missing allocation optimisation).

Paper values for reference::

                    x86             RISC-V
    Base            0.1606          1.2923
    Function count  0.1629  1.4%    1.3020  0.8%
    BB count        0.2681  66.9%   1.4904  15.3%

``test_reproduce_table`` regenerates the table (written to
benchmarks/results/table1_overhead.txt) and asserts the paper's
qualitative claims — who wins, by roughly what factor.
"""

from __future__ import annotations

import pytest

from conftest import MATMUL_N, MATMUL_REPS
from repro.api import open_binary
from repro.minicc import compile_source, matmul_source
from repro.sim import P550, StopReason, X86PROXY
from repro.tools import count_basic_blocks, count_function_entries


def _run(program, timing, instrument=None, use_dead_registers=True):
    """One measurement: returns (simulated seconds, machine)."""
    binary = open_binary(program)
    binary._patcher.use_dead_registers = use_dead_registers
    if instrument == "func":
        count_function_entries(binary, "multiply")
    elif instrument == "bb":
        count_basic_blocks(binary, "multiply")
    machine, event = binary.run_instrumented(timing=timing)
    assert event.reason is StopReason.EXITED, event
    return machine.simulated_seconds(), machine


@pytest.fixture(scope="module")
def measurements():
    """All six cells of the table (2 machines x 3 modes)."""
    program = compile_source(matmul_source(MATMUL_N, MATMUL_REPS))
    out = {}
    configs = {
        "riscv": (P550, True),       # the port, with dead-reg allocation
        "x86": (X86PROXY, False),    # legacy engine proxy: spill-always
    }
    checksums = set()
    for label, (timing, deadreg) in configs.items():
        for mode in ("base", "func", "bb"):
            secs, m = _run(program, timing,
                           None if mode == "base" else mode,
                           use_dead_registers=deadreg)
            out[(label, mode)] = secs
            checksums.add(bytes(m.stdout).split()[1])
    assert len(checksums) == 1, "instrumentation changed program output"
    return out


def _overhead(meas, label, mode):
    base = meas[(label, "base")]
    return 100.0 * (meas[(label, mode)] - base) / base


def test_reproduce_table(benchmark, measurements, record):
    """Regenerate the §4.3 table and check its shape.

    The benchmark fixture times one BB-instrumented run end-to-end
    (parse + instrument + simulate) at reduced scale.
    """
    small = compile_source(matmul_source(6, 2))
    benchmark.pedantic(
        lambda: _run(small, P550, "bb"), rounds=3, iterations=1)

    m = measurements
    rows = [
        f"Table (paper 4.3): matmul {MATMUL_N}x{MATMUL_N}, "
        f"{MATMUL_REPS} calls; times are *simulated* seconds",
        "",
        f"{'':16}{'x86proxy':>12}{'':>9}{'riscv(p550)':>14}{'':>9}",
        f"{'Base':16}{m[('x86','base')]:>12.4f}{'':>9}"
        f"{m[('riscv','base')]:>14.4f}{'':>9}",
        f"{'Function count':16}{m[('x86','func')]:>12.4f}"
        f"{_overhead(m,'x86','func'):>8.1f}%"
        f"{m[('riscv','func')]:>14.4f}"
        f"{_overhead(m,'riscv','func'):>8.1f}%",
        f"{'BB count':16}{m[('x86','bb')]:>12.4f}"
        f"{_overhead(m,'x86','bb'):>8.1f}%"
        f"{m[('riscv','bb')]:>14.4f}"
        f"{_overhead(m,'riscv','bb'):>8.1f}%",
        "",
        "paper:           x86: base 0.1606, func +1.4%, bb +66.9%",
        "                 riscv: base 1.2923, func +0.8%, bb +15.3%",
    ]
    record("table1_overhead", "\n".join(rows))

    # --- the paper's qualitative claims --------------------------------
    # 1. RISC-V base run is much slower than x86 (paper ratio ~8x).
    ratio = m[("riscv", "base")] / m[("x86", "base")]
    assert 3.0 < ratio < 25.0
    # 2. function-entry counting is cheap on both.
    assert _overhead(m, "riscv", "func") < 5.0
    assert _overhead(m, "x86", "func") < 10.0
    # 3. the optimised RISC-V engine beats the legacy engine per point.
    assert _overhead(m, "riscv", "func") < _overhead(m, "x86", "func")
    # 4. BB counting is substantial on both...
    assert _overhead(m, "riscv", "bb") > 3.0
    assert _overhead(m, "x86", "bb") > 20.0
    # 5. ...but the dead-register optimisation keeps RISC-V far lower
    #    (paper: 15.3% vs 66.9%).
    assert _overhead(m, "x86", "bb") > 2.0 * _overhead(m, "riscv", "bb")
    # 6. instrumentation cost is monotone in point count.
    for label in ("riscv", "x86"):
        assert m[(label, "base")] <= m[(label, "func")] < m[(label, "bb")]


def test_benchmark_instrumented_run(benchmark):
    """Wall-clock throughput of the full pipeline (parse + instrument +
    simulate) at small scale — the toolkit-side cost, not the paper
    metric."""
    program = compile_source(matmul_source(6, 3))

    def run():
        binary = open_binary(program)
        count_basic_blocks(binary, "multiply")
        machine, event = binary.run_instrumented()
        assert event.reason is StopReason.EXITED
        return machine.instret

    benchmark(run)
