"""Ablation: overhead stability across problem scale.

EXPERIMENTS.md scales the paper's 100x100 matmul down for the
pure-Python simulator, arguing overhead *ratios* are scale-invariant.
This benchmark checks that claim: BB-count overhead for N in {6, 10, 14}
must be similar (the inner loop dominates at every size), so the
scaled-down table-1 reproduction is representative.
"""

from __future__ import annotations

from repro.api import open_binary
from repro.minicc import compile_source, matmul_source
from repro.sim import P550, StopReason
from repro.tools import count_basic_blocks

SIZES = (6, 10, 14)
REPS = 6


def _overhead_at(n: int) -> float:
    program = compile_source(matmul_source(n, REPS))
    base = open_binary(program)
    m0, ev0 = base.run_instrumented(timing=P550)
    assert ev0.reason is StopReason.EXITED
    b = open_binary(program)
    count_basic_blocks(b, "multiply")
    m1, ev1 = b.run_instrumented(timing=P550)
    assert ev1.reason is StopReason.EXITED
    return 100.0 * (m1.ucycles - m0.ucycles) / m0.ucycles


def test_overhead_scale_invariance(benchmark, record):
    benchmark.pedantic(lambda: _overhead_at(6), rounds=3, iterations=1)

    overheads = {n: _overhead_at(n) for n in SIZES}
    rows = [
        "Ablation: BB-count overhead vs matmul size "
        "(scaling argument for the table-1 reproduction)",
        "",
        f"{'N':>6} {'riscv BB-count overhead':>26}",
    ]
    for n, ov in overheads.items():
        rows.append(f"{n:>6} {ov:>25.1f}%")
    spread = max(overheads.values()) - min(overheads.values())
    rows += [
        "",
        f"spread across sizes: {spread:.1f} percentage points — the",
        "overhead ratio is effectively scale-invariant, so the",
        "scaled-down reproduction of the paper's 100x100 run is fair.",
    ]
    record("ablation_scale", "\n".join(rows))

    # the ratios must be close (inner loop dominates at every size)
    assert spread < 12.0
    for ov in overheads.values():
        assert 5.0 < ov < 60.0
