"""Ablation: the simulator's tiered trace JIT on the matmul hot loop.

Measures throughput (simulated instructions per host second) across the
four execution tiers — closure interpreter, superblock traces,
megatraces, and megatraces revived from the persistent compiled-trace
cache — and checks all tiers are architecturally indistinguishable
(registers, memory-visible output, exit code, instruction/cycle
counts).  The warm tier must additionally report **zero** compile
events: every trace it runs was materialized from the snapshot.

Writes ``benchmarks/results/ablation_trace.txt`` and a machine-readable
``BENCH_sim.json`` at the repository root (consumed by
``tools/bench_guard.py`` in CI).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.minicc import compile_source
from repro.minicc.workloads import matmul_source
from repro.sim import Machine, P550, load_traces, save_traces
from repro.telemetry.events import EventStream

from conftest import MATMUL_N, MATMUL_REPS, PAPER_SCALE

BENCH_JSON = Path(__file__).parent.parent / "BENCH_sim.json"

#: throughput needs a longer run than the table-1 workload so compile
#: time amortizes the way it does in a real service workload (the cold
#: megatrace tier pays its compiles once per image, not per loop)
BENCH_N = MATMUL_N if PAPER_SCALE else 16
BENCH_REPS = MATMUL_REPS if PAPER_SCALE else 40

#: timing repetitions; throughput is taken from the fastest run, the
#: run-to-run spread ((max-min)/min) is recorded alongside
REPEATS = 3


def _machine(prog, tier: str, snapshot=None):
    m = Machine(P550,
                trace_compile=tier != "interpreter",
                megatraces=tier in ("megatrace", "persist_warm"))
    m.load_program(prog)
    if tier == "persist_warm":
        load_traces(m, snapshot)
    return m


def _measure(prog, tier: str, snapshot=None):
    """Best-of-REPEATS run of one tier: (machine, stop event, best
    seconds, run-to-run spread)."""
    best = None
    times = []
    for _ in range(REPEATS):
        m = _machine(prog, tier, snapshot)
        t0 = time.perf_counter()
        ev = m.run()
        elapsed = time.perf_counter() - t0
        times.append(elapsed)
        if best is None or elapsed < best[2]:
            best = (m, ev, elapsed)
    spread = (max(times) - min(times)) / min(times)
    return best[0], best[1], best[2], spread


def _arch_state(m, ev):
    return {
        "reason": ev.reason.value,
        "exit_code": m.exit_code,
        "pc": m.pc,
        "x": list(m.x),
        "f": list(m.f),
        "instret": m.instret,
        "ucycles": m.ucycles,
        "stdout": bytes(m.stdout).decode(),
    }


def _measure_observed(prog, granularity: str):
    """Throughput with an event-stream observer attached (then again
    after detach, pinning the zero-overhead-when-unobserved rule)."""
    m = Machine(P550, trace_compile=True)
    m.load_program(prog)
    es = EventStream(granularity=granularity, capacity=1 << 16)
    m.attach_observer(es)
    t0 = time.perf_counter()
    m.run()
    dt_obs = time.perf_counter() - t0
    instret_obs = m.instret
    m.detach_observer(es)
    # rerun the same image unobserved: must ride the traced path again
    m2 = Machine(P550, trace_compile=True)
    m2.load_program(prog)
    t0 = time.perf_counter()
    m2.run()
    dt_after = time.perf_counter() - t0
    return instret_obs / dt_obs, m2.instret / dt_after


def test_trace_compilation_throughput(record):
    prog = compile_source(matmul_source(BENCH_N, BENCH_REPS))

    # one cold megatrace run feeds the persistent-cache tier
    cold = Machine(P550, trace_compile=True, megatraces=True)
    cold.load_program(prog)
    cold.run()
    snapshot = json.loads(json.dumps(save_traces(cold)))

    tiers = {}
    results = {}
    for tier in ("interpreter", "superblock", "megatrace",
                 "persist_warm"):
        m, ev, dt, spread = _measure(prog, tier, snapshot)
        results[tier] = (m, ev)
        tiers[tier] = {
            "instr_per_sec": round(m.instret / dt),
            "seconds_best": round(dt, 4),
            "run_to_run_spread": round(spread, 3),
        }

    # identical architectural results across every tier
    m0, ev0 = results["interpreter"]
    base_state = _arch_state(m0, ev0)
    for tier in ("superblock", "megatrace", "persist_warm"):
        m, ev = results[tier]
        assert _arch_state(m, ev) == base_state, tier
    assert ev0.reason.value == "exited" and m0.exit_code == 0

    ips0 = tiers["interpreter"]["instr_per_sec"]
    for tier in ("superblock", "megatrace", "persist_warm"):
        tiers[tier]["speedup"] = round(
            tiers[tier]["instr_per_sec"] / ips0, 3)

    mm = results["megatrace"][0]
    mw = results["persist_warm"][0]
    tiers["megatrace"].update({
        "superblocks_compiled": mm.traces.compiles,
        "megatraces_compiled": mm.traces.mega_compiles,
        "jalr_guard_hits": mm.traces.jalr_hits[0],
        "jalr_guard_misses": mm.traces.jalr_misses[0],
        "deopts": mm.traces.deopt_count[0],
    })
    tiers["persist_warm"].update({
        "superblocks_compiled": mw.traces.compiles,
        "megatraces_compiled": mw.traces.mega_compiles,
        "persist_loads": mw.traces.persist_loads,
        "persist_stale": mw.traces.persist_stale,
    })
    # the warm tier must not compile anything: every trace it ran was
    # revived from the snapshot
    assert mw.traces.compiles == 0 and mw.traces.mega_compiles == 0

    ips_block, _ = _measure_observed(prog, "block")
    ips_instr, ips_detached = _measure_observed(prog, "instruction")

    fmt = [("interpreter", "interpreter (traces off)"),
           ("superblock", "superblocks (tier 1)"),
           ("megatrace", "megatraces (tier 2)"),
           ("persist_warm", "warm persistent cache")]
    lines = [
        "Ablation: tiered trace JIT (matmul mutatee, "
        f"N={BENCH_N}, reps={BENCH_REPS})",
        "",
        f"{'tier':<26}{'Minstr/s':>10}{'seconds':>9}{'speedup':>9}"
        f"{'spread':>8}",
    ]
    for key, label in fmt:
        t = tiers[key]
        speedup = f"{t.get('speedup', 1.0):.2f}x"
        lines.append(
            f"{label:<26}{t['instr_per_sec'] / 1e6:>10.2f}"
            f"{t['seconds_best']:>9.3f}{speedup:>9}"
            f"{t['run_to_run_spread']:>7.1%}")
    lines += [
        "",
        f"megatraces compiled: {mm.traces.mega_compiles}   "
        f"jalr guards: {mm.traces.jalr_hits[0]} hit / "
        f"{mm.traces.jalr_misses[0]} miss   "
        f"deopts: {mm.traces.deopt_count[0]}",
        f"warm tier: {mw.traces.persist_loads} traces revived, "
        f"0 compiles",
        "",
        "observer overhead (event streams):",
        f"{'block-granularity observed':<28}{ips_block / 1e6:>10.2f}"
        " Minstr/s",
        f"{'instruction-granularity':<28}{ips_instr / 1e6:>10.2f}"
        " Minstr/s",
        f"{'after detach (traced)':<28}{ips_detached / 1e6:>10.2f}"
        " Minstr/s",
    ]
    record("ablation_trace", "\n".join(lines) + "\n")

    BENCH_JSON.write_text(json.dumps({
        "benchmark": "sim_throughput_matmul",
        "matmul_n": BENCH_N,
        "matmul_reps": BENCH_REPS,
        "instructions": m0.instret,
        "tiers": tiers,
        # headline number (and the CI guard's key): megatrace tier
        # throughput over the closure interpreter
        "speedup": tiers["megatrace"]["speedup"],
        "speedup_superblock": tiers["superblock"]["speedup"],
        "instr_per_sec_observed_block": round(ips_block),
        "instr_per_sec_observed_instruction": round(ips_instr),
        "instr_per_sec_after_detach": round(ips_detached),
    }, indent=2) + "\n")

    # acceptance bars: superblocks >= 2x, megatraces >= 4.5x
    assert tiers["superblock"]["speedup"] >= 2.0
    assert tiers["megatrace"]["speedup"] >= 4.5, \
        f"megatrace speedup only {tiers['megatrace']['speedup']:.2f}x"
