"""Ablation: superblock trace compilation in the simulator hot loop.

Measures interpreter throughput (simulated instructions per host
second) on the matmul mutatee with the trace compiler on vs. off, and
checks the two modes are architecturally indistinguishable (registers,
memory-visible output, exit code, instruction/cycle counts).

Writes ``benchmarks/results/ablation_trace.txt`` and a machine-readable
``BENCH_sim.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.minicc import compile_source
from repro.minicc.workloads import matmul_source
from repro.sim import Machine, P550
from repro.telemetry.events import EventStream

from conftest import MATMUL_N, MATMUL_REPS

BENCH_JSON = Path(__file__).parent.parent / "BENCH_sim.json"

#: timing repetitions; throughput is taken from the fastest run
REPEATS = 3


def _run_once(prog, trace_compile: bool):
    m = Machine(P550, trace_compile=trace_compile)
    m.load_program(prog)
    t0 = time.perf_counter()
    ev = m.run()
    elapsed = time.perf_counter() - t0
    return m, ev, elapsed


def _measure(prog, trace_compile: bool):
    best = None
    for _ in range(REPEATS):
        m, ev, elapsed = _run_once(prog, trace_compile)
        if best is None or elapsed < best[2]:
            best = (m, ev, elapsed)
    return best


def _arch_state(m, ev):
    return {
        "reason": ev.reason.value,
        "exit_code": m.exit_code,
        "pc": m.pc,
        "x": list(m.x),
        "f": list(m.f),
        "instret": m.instret,
        "ucycles": m.ucycles,
        "stdout": bytes(m.stdout).decode(),
    }


def _measure_observed(prog, granularity: str):
    """Throughput with an event-stream observer attached (then again
    after detach, pinning the zero-overhead-when-unobserved rule)."""
    m = Machine(P550, trace_compile=True)
    m.load_program(prog)
    es = EventStream(granularity=granularity, capacity=1 << 16)
    m.attach_observer(es)
    t0 = time.perf_counter()
    m.run()
    dt_obs = time.perf_counter() - t0
    instret_obs = m.instret
    m.detach_observer(es)
    # rerun the same image unobserved: must ride the traced path again
    m2 = Machine(P550, trace_compile=True)
    m2.load_program(prog)
    t0 = time.perf_counter()
    m2.run()
    dt_after = time.perf_counter() - t0
    return instret_obs / dt_obs, m2.instret / dt_after


def test_trace_compilation_throughput(record):
    prog = compile_source(matmul_source(MATMUL_N, MATMUL_REPS))

    m_off, ev_off, dt_off = _measure(prog, trace_compile=False)
    m_on, ev_on, dt_on = _measure(prog, trace_compile=True)
    ips_block, _ = _measure_observed(prog, "block")
    ips_instr, ips_detached = _measure_observed(prog, "instruction")

    # identical architectural results, traces on vs. off
    assert _arch_state(m_on, ev_on) == _arch_state(m_off, ev_off)
    assert ev_on.reason.value == "exited" and m_on.exit_code == 0

    ips_off = m_off.instret / dt_off
    ips_on = m_on.instret / dt_on
    speedup = ips_on / ips_off

    lines = [
        "Ablation: superblock trace compilation (matmul mutatee, "
        f"N={MATMUL_N}, reps={MATMUL_REPS})",
        "",
        f"{'mode':<24}{'instructions':>14}{'seconds':>10}"
        f"{'Minstr/s':>12}",
        f"{'interpreter (traces off)':<24}{m_off.instret:>14,}"
        f"{dt_off:>10.3f}{ips_off / 1e6:>12.2f}",
        f"{'traced (superblocks)':<24}{m_on.instret:>14,}"
        f"{dt_on:>10.3f}{ips_on / 1e6:>12.2f}",
        "",
        f"speedup: {speedup:.2f}x   traces compiled: "
        f"{m_on.traces.compiles}   chain links: {m_on.traces.links}",
        "",
        "observer overhead (event streams):",
        f"{'block-granularity observed':<28}{ips_block / 1e6:>10.2f}"
        " Minstr/s",
        f"{'instruction-granularity':<28}{ips_instr / 1e6:>10.2f}"
        " Minstr/s",
        f"{'after detach (traced)':<28}{ips_detached / 1e6:>10.2f}"
        " Minstr/s",
    ]
    record("ablation_trace", "\n".join(lines) + "\n")

    BENCH_JSON.write_text(json.dumps({
        "benchmark": "sim_throughput_matmul",
        "matmul_n": MATMUL_N,
        "matmul_reps": MATMUL_REPS,
        "instructions": m_on.instret,
        "instr_per_sec_interp": round(ips_off),
        "instr_per_sec_traced": round(ips_on),
        "speedup": round(speedup, 3),
        "traces_compiled": m_on.traces.compiles,
        "chain_links": m_on.traces.links,
        "instr_per_sec_observed_block": round(ips_block),
        "instr_per_sec_observed_instruction": round(ips_instr),
        "instr_per_sec_after_detach": round(ips_detached),
    }, indent=2) + "\n")

    # the tentpole's acceptance bar: >= 2x over the closure interpreter
    assert speedup >= 2.0, f"trace speedup only {speedup:.2f}x"
