"""Ablation: instrumenting compressed (RVC-dense) binaries.

The paper's mutatees are GCC-compiled RV64GC — roughly half their
instructions are 2-byte compressed forms (§3.1.2's whole reason to
exist).  This ablation compiles the matmul mutatee with and without
auto-compression and compares instrumentability and overhead: the
springboard/relocation machinery must absorb the denser layout with the
same counters and similar relative overhead.
"""

from __future__ import annotations

from repro.api import open_binary
from repro.minicc import Options, compile_source, matmul_source
from repro.riscv import decode_all
from repro.sim import P550, StopReason
from repro.tools import count_basic_blocks

N, REPS = 10, 8


def _measure(opts):
    program = compile_source(matmul_source(N, REPS), opts)
    total = sum(1 for _ in decode_all(program.text, program.text_base))
    short = sum(1 for _, i in decode_all(program.text, program.text_base)
                if i.length == 2)
    base = open_binary(program)
    m0, ev0 = base.run_instrumented(timing=P550)
    assert ev0.reason is StopReason.EXITED
    b = open_binary(program)
    h = count_basic_blocks(b, "multiply")
    m1, ev1 = b.run_instrumented(timing=P550)
    assert ev1.reason is StopReason.EXITED
    overhead = 100.0 * (m1.ucycles - m0.ucycles) / m0.ucycles
    return {
        "text_bytes": len(program.text),
        "density": 100.0 * short / total,
        "overhead": overhead,
        "count": h.read(m1),
        "checksum": bytes(m1.stdout).split()[1],
    }


def test_compressed_mutatee(benchmark, record):
    benchmark.pedantic(
        lambda: _measure(Options(compress=True)), rounds=1, iterations=1)

    plain = _measure(None)
    dense = _measure(Options(compress=True))

    rows = [
        f"Ablation: compressed (RVC) mutatee "
        f"(matmul {N}x{N} x{REPS}, BB count on multiply)",
        "",
        f"{'':22}{'uncompressed':>14}{'auto-RVC':>12}",
        f"{'text bytes':22}{plain['text_bytes']:>14}"
        f"{dense['text_bytes']:>12}",
        f"{'compressed density':22}{plain['density']:>13.0f}%"
        f"{dense['density']:>11.0f}%",
        f"{'BB executions':22}{plain['count']:>14}{dense['count']:>12}",
        f"{'cycle overhead':22}{plain['overhead']:>13.1f}%"
        f"{dense['overhead']:>11.1f}%",
        "",
        "identical counters and checksums: the patching engine absorbs",
        "GCC-density RVC layouts (paper 3.1.2's space constraints).",
    ]
    record("ablation_compressed", "\n".join(rows))

    assert dense["density"] > 40.0
    assert plain["density"] < 10.0
    assert dense["count"] == plain["count"]
    assert dense["checksum"] == plain["checksum"]
