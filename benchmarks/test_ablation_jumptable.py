"""Ablation: jump-table analysis (§3.2.3's jalr resolution cascade).

A switch-heavy mutatee is parsed with the full resolution pipeline
(backward slicing + jump-table analysis) and with jump tables disabled.
Reported: how many jalr sites resolve at each cascade stage, CFG
coverage with/without the analysis, and the analysis cost.
"""

from __future__ import annotations

import time

from repro.minicc import compile_source
from repro.parse import EdgeType, parse_binary
from repro.symtab import Symtab

N_SWITCHES = 8


def _switchy_source(k=N_SWITCHES) -> str:
    funcs = []
    for i in range(k):
        cases = "\n".join(
            f"        case {j}: r = x + {j * 3}; break;"
            for j in range(6))
        funcs.append(f"""
long dispatch{i}(long op, long x) {{
    long r = 0;
    switch (op) {{
{cases}
        default: r = x;
    }}
    return r;
}}""")
    calls = " + ".join(f"dispatch{i}(i % 7, i)" for i in range(k))
    funcs.append(f"""
long main(void) {{
    long acc = 0;
    for (long i = 0; i < 20; i = i + 1) {{ acc = acc + {calls}; }}
    print_long(acc);
    return 0;
}}""")
    return "\n".join(funcs)


def test_jump_table_analysis(benchmark, record):
    st = Symtab.from_program(compile_source(_switchy_source()))

    co = benchmark(lambda: parse_binary(st))

    t0 = time.perf_counter()
    co = parse_binary(st)
    t_parse = time.perf_counter() - t0

    dispatchers = [f for f in co.functions.values()
                   if f.name.startswith("dispatch")]
    assert len(dispatchers) == N_SWITCHES

    n_tables = sum(len(f.jump_tables) for f in dispatchers)
    n_unresolved = sum(len(f.unresolved) for f in dispatchers)
    n_targets = sum(len(ts) for f in dispatchers
                    for ts in f.jump_tables.values())
    indirect_edges = sum(
        1 for f in dispatchers for b in f.blocks.values()
        for e in b.out_edges if e.kind is EdgeType.INDIRECT
        and e.target is not None)

    # coverage delta: blocks reachable with vs without table targets
    blocks_with = sum(len(f.blocks) for f in dispatchers)

    rows = [
        f"Ablation: jump-table analysis ({N_SWITCHES} switch functions)",
        "",
        f"  jalr sites resolved as jump tables : {n_tables}/"
        f"{n_tables + n_unresolved}",
        f"  enumerated table targets           : {n_targets}",
        f"  INDIRECT edges added to the CFG    : {indirect_edges}",
        f"  dispatcher blocks discovered       : {blocks_with}",
        f"  full parse time                    : {t_parse * 1e3:.1f} ms",
        "",
        "  without the analysis every switch is an unresolvable jalr",
        "  and all case blocks are parse gaps (paper 3.2.3).",
    ]
    record("ablation_jumptable", "\n".join(rows))

    assert n_tables == N_SWITCHES       # every switch resolved
    assert n_unresolved == 0
    assert n_targets == N_SWITCHES * 6  # six cases each
