"""Ablation: breakpoint-emulated single-stepping (§3.2.6).

"The single-stepping functionality is not implemented for RISC-V,
meaning that ProcControlAPI needs to emulate single-stepping on the
software level ... which decreases performance."  This benchmark
measures the cost: emulated steps (temporary breakpoints + continue)
vs direct simulator stepping (the hardware-single-step stand-in).
"""

from __future__ import annotations

import time

from repro.minicc import compile_source, fib_source
from repro.proccontrol import EventType, Process
from repro.sim import Machine
from repro.symtab import Symtab

N_STEPS = 300


def _emulated_steps(symtab, n):
    proc = Process.create(symtab)
    done = 0
    for _ in range(n):
        ev = proc.step()
        done += 1
        if ev.type is EventType.EXITED:
            break
    return done


def _direct_steps(symtab, n):
    m = Machine()
    symtab.load_into(m)
    done = 0
    for _ in range(n):
        if m.step() is not None:
            break
        done += 1
    return done


def test_emulated_single_step_cost(benchmark, record):
    symtab = Symtab.from_program(compile_source(fib_source(20)))

    benchmark.pedantic(lambda: _emulated_steps(symtab, 50),
                       rounds=3, iterations=1)

    t0 = time.perf_counter()
    n_emu = _emulated_steps(symtab, N_STEPS)
    t_emu = time.perf_counter() - t0

    t0 = time.perf_counter()
    n_dir = _direct_steps(symtab, N_STEPS)
    t_dir = time.perf_counter() - t0

    emu_rate = n_emu / t_emu
    dir_rate = n_dir / t_dir
    slowdown = dir_rate / emu_rate

    rows = [
        "Ablation: single-step emulation (paper 3.2.6)",
        "",
        f"  emulated (temp breakpoints): {emu_rate:10.0f} steps/s",
        f"  direct (hw-step stand-in)  : {dir_rate:10.0f} steps/s",
        f"  software emulation slowdown: x{slowdown:.1f}",
        "",
        "  each emulated step plants breakpoints at every possible",
        "  successor, continues, and cleans up — the RISC-V ptrace",
        "  reality the paper describes.",
    ]
    record("ablation_singlestep", "\n".join(rows))

    assert n_emu == n_dir == N_STEPS
    # emulation must be measurably slower
    assert slowdown > 2.0


def test_emulated_step_trajectory_matches_direct(benchmark):
    """The emulated stepper must visit exactly the same pc sequence as
    direct execution."""
    symtab = Symtab.from_program(compile_source(fib_source(5)))

    def trajectories():
        proc = Process.create(symtab)
        emu_pcs = [proc.pc]
        for _ in range(120):
            ev = proc.step()
            if ev.type is EventType.EXITED:
                break
            emu_pcs.append(proc.pc)

        m = Machine()
        symtab.load_into(m)
        dir_pcs = [m.pc]
        for _ in range(len(emu_pcs) - 1):
            if m.step() is not None:
                break
            dir_pcs.append(m.pc)
        return emu_pcs, dir_pcs

    emu_pcs, dir_pcs = benchmark.pedantic(trajectories, rounds=1,
                                          iterations=1)
    assert emu_pcs == dir_pcs
