"""Reproduction of Figure 1: the three binary-instrumentation variants.

The figure shows (a) static rewriting — analyze, instrument, write a new
binary; (b) dynamic create — instrument, then spawn; (c) dynamic attach
— attach to a running process, then instrument.  This benchmark runs the
same (mutatee, snippet) through all three flows, checks they agree
exactly, and reports the cost of each flow.
"""

from __future__ import annotations

import time

from repro.api import load_rewritten, open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source, fib_source
from repro.patch import PointType
from repro.proccontrol import EventType, Process
from repro.sim import Machine, StopReason

N = 12
EXPECTED_CALLS = 465  # 2*fib(13)-1


def _fresh_binary():
    b = open_binary(compile_source(fib_source(N)))
    c = b.allocate_variable("calls")
    b.insert(b.points("fib", PointType.FUNC_ENTRY), IncrementVar(c))
    return b, c


def _flow_static():
    b, c = _fresh_binary()
    blob = b.rewrite()
    m = Machine()
    load_rewritten(m, blob)
    ev = m.run(max_steps=10_000_000)
    assert ev.reason is StopReason.EXITED
    return m.mem.read_int(c.address, 8)


def _flow_create():
    b, c = _fresh_binary()
    proc = b.create_process()
    ev = proc.continue_to_event()
    assert ev.type is EventType.EXITED
    return proc.machine.mem.read_int(c.address, 8)


def _flow_attach():
    b, c = _fresh_binary()
    m = Machine()
    b.symtab.load_into(m)
    proc = b.attach_and_instrument(m)
    ev = proc.continue_to_event()
    assert ev.type is EventType.EXITED
    return m.mem.read_int(c.address, 8)


def test_figure1_variants(benchmark, record):
    benchmark.pedantic(_flow_create, rounds=3, iterations=1)

    rows = ["Figure 1: instrumentation variants "
            f"(fib({N}) entry counter; expected {EXPECTED_CALLS} calls)",
            ""]
    results = {}
    for name, flow in (("static rewrite ", _flow_static),
                       ("dynamic create ", _flow_create),
                       ("dynamic attach ", _flow_attach)):
        t0 = time.perf_counter()
        count = flow()
        dt = time.perf_counter() - t0
        results[name] = count
        rows.append(f"  {name}: counter={count}  wall={dt * 1e3:7.1f} ms")
    record("fig1_variants", "\n".join(rows))

    assert set(results.values()) == {EXPECTED_CALLS}, results
