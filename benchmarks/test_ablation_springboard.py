"""Ablation: the springboard efficiency ladder (§3.1.2).

The paper: "Dyninst will try to choose the most efficient jump sequence
in each case, ultimately resorting to the inefficient 2-byte trap
instructions in the worst case."  This benchmark instruments the same
mutatee with the patch area placed progressively farther away (and with
a compressed-entry mutatee for 2-byte slots), reporting which rung each
configuration lands on and what it costs in simulated cycles per
instrumented call.
"""

from __future__ import annotations

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source, fib_source
from repro.patch import PointType
from repro.riscv import assemble
from repro.sim import Machine, StopReason
from repro.symtab import Symtab

N = 10
CALLS = 177  # 2*fib(11)-1


def _run_with_patch_base(patch_base):
    b = open_binary(compile_source(fib_source(N)))
    if patch_base is not None:
        from repro.patch import Patcher

        b._patcher = Patcher(b.symtab, b.cfg, patch_base=patch_base)
    c = b.allocate_variable("c")
    b.insert(b.points("fib", PointType.FUNC_ENTRY), IncrementVar(c))
    res = b.commit()
    m, ev = b.run_instrumented()
    assert ev.reason is StopReason.EXITED
    assert m.mem.read_int(c.address, 8) == CALLS
    return res.stats, m


def _baseline_cycles():
    b = open_binary(compile_source(fib_source(N)))
    m, ev = b.run_instrumented()
    assert ev.reason is StopReason.EXITED
    return m.ucycles


def _tiny_slot_trap_case():
    """A 2-byte compressed instruction point with a far patch area: the
    paper's worst case (compressed trap)."""
    src = """
.globl _start
.type _start, @function
_start:
  li a0, 200
loop:
  c.addi a0, -1
  bnez a0, loop
  li a7, 93
  ecall
"""
    p = assemble(src)
    st = Symtab.from_program(p)
    from repro.parse import parse_binary
    from repro.patch import Patcher, instruction_point

    co = parse_binary(st)
    fn = co.function_containing(p.entry)
    patcher = Patcher(st, co, patch_base=0x1_0000 + (16 << 20))
    c = patcher.allocate_var("hits")
    patcher.insert(instruction_point(fn, p.symbols["loop"].address),
                   IncrementVar(c))
    res = patcher.commit()
    m = Machine()
    st.load_into(m)
    res.apply_to_machine(m)
    ev = m.run(max_steps=1_000_000)
    assert ev.reason is StopReason.EXITED
    assert m.mem.read_int(c.address, 8) == 200
    return res.stats, m


def test_springboard_ladder(benchmark, record):
    benchmark.pedantic(lambda: _run_with_patch_base(None),
                       rounds=3, iterations=1)

    base_cycles = _baseline_cycles()
    rows = [f"Ablation: springboard ladder (fib({N}) entry counter, "
            f"{CALLS} executions)",
            "",
            f"{'patch area':>22} {'rung':>12} {'cycles/point-exec':>18}"]

    # near: jal rung
    stats_near, m_near = _run_with_patch_base(None)
    per_near = (m_near.ucycles - base_cycles) / 64 / CALLS
    rows.append(f"{'near (default)':>22} "
                f"{max(stats_near.springboards, key=stats_near.springboards.get):>12} "
                f"{per_near:>18.1f}")
    assert stats_near.springboards.get("jal", 0) >= 1

    # far: auipc+jalr rung
    stats_far, m_far = _run_with_patch_base(0x1_0000 + (16 << 20))
    per_far = (m_far.ucycles - base_cycles) / 64 / CALLS
    rows.append(f"{'+16MiB':>22} "
                f"{max(stats_far.springboards, key=stats_far.springboards.get):>12} "
                f"{per_far:>18.1f}")
    assert stats_far.springboards.get("auipc+jalr", 0) \
        + stats_far.springboards.get("trap", 0) >= 1

    # worst case: compressed 2-byte slot, far target -> trap
    stats_trap, m_trap = _tiny_slot_trap_case()
    rows.append(f"{'2-byte slot, +16MiB':>22} {'trap':>12} "
                f"{'(see below)':>18}")
    assert stats_trap.springboards.get("trap", 0) >= 1
    assert stats_trap.trap_sites >= 1

    rows += [
        "",
        f"jal rung cost/exec      : {per_near:6.1f} cycles",
        f"far rung cost/exec      : {per_far:6.1f} cycles "
        f"(x{per_far / per_near:.2f} vs jal)",
        "trap rung engages the runtime on every execution — the",
        "'inefficient 2-byte trap' worst case of 3.1.2.",
    ]
    record("ablation_springboard", "\n".join(rows))

    # the ladder must be ordered: far costs more than near
    assert per_far > per_near
