"""Reproduction of Figure 2: the Dyninst component graph.

Figure 2 is an architecture diagram — its executable form is the
*import* graph of this package.  The benchmark extracts the actual
inter-component dependencies from the source and checks them against
the paper's arrows (information flows from the analysis toolkits toward
instrumentation, never backward).  A detailed structural test lives in
tests/test_architecture.py; this benchmark regenerates the figure as a
text/DOT artifact.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).parent.parent / "src" / "repro"

#: the paper's components mapped to our packages
COMPONENTS = [
    "symtab", "instruction", "parse", "dataflow", "codegen", "patch",
    "proccontrol", "stackwalk",
]

#: Figure 2's use-relationships: component -> components it may use
#: (plus substrates riscv/elf/sim/semantics, allowed everywhere).
ALLOWED = {
    "symtab": set(),
    "instruction": set(),
    "parse": {"instruction", "symtab", "dataflow"},
    "dataflow": {"instruction", "parse"},
    "codegen": {"dataflow", "instruction"},
    "patch": {"codegen", "dataflow", "parse", "instruction", "symtab"},
    "proccontrol": {"instruction", "symtab"},
    "stackwalk": {"dataflow", "parse", "proccontrol", "instruction"},
}

SUBSTRATES = {"riscv", "elf", "sim", "semantics", "minicc", "api",
              "tools"}


def component_imports() -> dict[str, set[str]]:
    """component -> set of repro components it imports."""
    out: dict[str, set[str]] = {c: set() for c in COMPONENTS}
    for comp in COMPONENTS:
        for py in (SRC / comp).rglob("*.py"):
            tree = ast.parse(py.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and node.module:
                    mod = node.module
                    if node.level > 0:  # relative: resolve package names
                        parts = mod.split(".")
                        if node.level >= 2 and parts:
                            target = parts[0]
                        else:
                            continue
                    elif mod.startswith("repro."):
                        target = mod.split(".")[1]
                    else:
                        continue
                    if target in COMPONENTS and target != comp:
                        out[comp].add(target)
    return out


def test_figure2_component_graph(benchmark, record):
    imports = benchmark(component_imports)

    rows = ["Figure 2: component use-relationships (extracted from "
            "imports)", ""]
    for comp in COMPONENTS:
        uses = sorted(imports[comp])
        rows.append(f"  {comp:12} -> {', '.join(uses) if uses else '(substrates only)'}")
    rows.append("")
    rows.append("digraph components {")
    for comp in COMPONENTS:
        for dep in sorted(imports[comp]):
            rows.append(f'  "{comp}" -> "{dep}";')
    rows.append("}")
    record("fig2_components", "\n".join(rows))

    for comp, uses in imports.items():
        illegal = uses - ALLOWED[comp]
        assert not illegal, (
            f"{comp} uses {sorted(illegal)} — not an arrow in Figure 2")
