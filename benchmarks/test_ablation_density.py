"""Ablation: overhead vs. instrumentation density.

The paper's table has two densities (1 point, 11 points).  This sweep
fills in the curve: overhead as a function of how many of the hot
function's blocks carry a counter — confirming overhead is dominated by
*executed* instrumentation (inner-loop blocks) rather than by the point
count itself, for both engines (dead-reg on/off).
"""

from __future__ import annotations

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source, matmul_source
from repro.patch import PointType
from repro.sim import P550, StopReason

N, REPS = 10, 8


def _run_with_density(program, k: int, use_dead_registers: bool):
    """Instrument the first k blocks (by address) of multiply."""
    b = open_binary(program)
    b._patcher.use_dead_registers = use_dead_registers
    mult = b.function("multiply")
    pts = b.points(mult, PointType.BLOCK_ENTRY)[:k]
    if pts:
        c = b.allocate_variable("c")
        b.insert(pts, IncrementVar(c))
    m, ev = b.run_instrumented(timing=P550)
    assert ev.reason is StopReason.EXITED
    return m


def test_density_sweep(benchmark, record):
    program = compile_source(matmul_source(N, REPS))
    benchmark.pedantic(
        lambda: _run_with_density(program, 4, True), rounds=3,
        iterations=1)

    b0 = open_binary(program)
    n_blocks = len(b0.points(b0.function("multiply"),
                             PointType.BLOCK_ENTRY))
    base = _run_with_density(program, 0, True).ucycles

    rows = [
        f"Ablation: overhead vs instrumentation density "
        f"(matmul {N}x{N} x{REPS}; multiply has {n_blocks} blocks)",
        "",
        f"{'points':>8} {'overhead (dead-reg ON)':>24} "
        f"{'overhead (OFF)':>16}",
    ]
    prev_on = -1.0
    densities = sorted({1, n_blocks // 3, 2 * n_blocks // 3, n_blocks})
    results = {}
    for k in densities:
        on = _run_with_density(program, k, True).ucycles
        off = _run_with_density(program, k, False).ucycles
        ov_on = 100.0 * (on - base) / base
        ov_off = 100.0 * (off - base) / base
        results[k] = (ov_on, ov_off)
        rows.append(f"{k:>8} {ov_on:>23.1f}% {ov_off:>15.1f}%")
        assert ov_on >= prev_on - 0.01  # monotone in density
        assert ov_off >= ov_on - 0.01   # spilling never cheaper
        prev_on = ov_on
    rows += [
        "",
        "overhead grows with executed instrumentation; the dead-reg",
        "engine stays below the spill-always engine at every density",
        "(the paper's table is the 1-point and all-points rows).",
    ]
    record("ablation_density", "\n".join(rows))

    full_on, full_off = results[n_blocks]
    assert full_off > full_on
