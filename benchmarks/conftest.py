"""Shared benchmark fixtures and the results recorder.

Every benchmark regenerates one paper artifact (table/figure) or one
ablation; beyond pytest-benchmark's wall-clock numbers, each writes its
paper-style table to ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture (see EXPERIMENTS.md for the recorded runs).

Scaling: the paper runs 100x100 matmul on silicon; the pure-Python
simulator executes ~3-5M instr/s, so defaults are scaled down
(overheads are ratios and survive scaling).  Set
``REPRO_PAPER_SCALE=1`` for the full-size run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

PAPER_SCALE = bool(int(os.environ.get("REPRO_PAPER_SCALE", "0")))

#: matmul size / repetitions used by the table-1 reproduction.
#: Paper scale uses the full 100x100 matrix (the paper's size) with a
#: few repetitions — a single cell then simulates ~10^8 instructions
#: (plan for ~10 minutes of wall clock for the whole table).
MATMUL_N = 100 if PAPER_SCALE else 12
MATMUL_REPS = 3 if PAPER_SCALE else 20


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text)
        print(f"\n{text}")

    return _record
