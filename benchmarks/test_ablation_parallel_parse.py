"""Ablation: parallel CFG parsing (§2.1's "fast parallel algorithm").

A synthetic many-function binary is parsed serially and with the
partition/merge thread-pool parser.  Results must agree exactly;
wall-clock is reported honestly — CPython's GIL bounds the speedup for
this pure-Python port, but the partition/merge structure (what Dyninst
parallelises in C++) is what's being validated.
"""

from __future__ import annotations

import time

from repro.minicc import compile_source
from repro.parse import parse_binary, parse_binary_parallel
from repro.symtab import Symtab

N_FUNCS = 60


def _many_function_source(n=N_FUNCS) -> str:
    parts = []
    for i in range(n):
        parts.append(f"""
long work{i}(long x) {{
    long s = x;
    for (long j = 0; j < 4; j = j + 1) {{
        if (s % 2 == 0) {{ s = s / 2; }} else {{ s = s * 3 + 1; }}
    }}
    return s;
}}""")
    calls = " + ".join(f"work{i}({i})" for i in range(n))
    parts.append(f"long main(void) {{ return ({calls}) % 256; }}")
    return "\n".join(parts)


def test_parallel_parse(benchmark, record):
    st = Symtab.from_program(compile_source(_many_function_source()))

    serial = parse_binary(st)
    t0 = time.perf_counter()
    parse_binary(st)
    t_serial = time.perf_counter() - t0

    par = benchmark.pedantic(
        lambda: parse_binary_parallel(st, workers=4),
        rounds=3, iterations=1)
    t0 = time.perf_counter()
    par = parse_binary_parallel(st, workers=4)
    t_par = time.perf_counter() - t0

    # equivalence: same functions, same instruction coverage
    assert set(serial.functions) == set(par.functions)
    mismatches = []
    for addr in serial.functions:
        s_cov = {i.address for b in serial.functions[addr].blocks.values()
                 for i in b.insns}
        p_cov = {i.address for b in par.functions[addr].blocks.values()
                 for i in b.insns}
        if s_cov != p_cov:
            mismatches.append(serial.functions[addr].name)
    assert not mismatches, mismatches

    n_insns = sum(1 for f in serial.functions.values()
                  for _ in f.instructions())
    rows = [
        f"Ablation: parallel parsing ({N_FUNCS} functions, "
        f"{len(serial.blocks)} blocks, {n_insns} instructions)",
        "",
        f"  serial parse   : {t_serial * 1e3:8.1f} ms",
        f"  parallel (4 wk): {t_par * 1e3:8.1f} ms   "
        f"(speedup x{t_serial / t_par:.2f}; GIL-bound in CPython)",
        "",
        "  results identical: yes (functions, coverage, call edges)",
    ]
    record("ablation_parallel_parse", "\n".join(rows))
