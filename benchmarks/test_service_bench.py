"""Benchmark: the content-addressed artifact store and session service.

Two headline numbers, both written to ``BENCH_service.json`` at the
repository root (consumed by ``tools/bench_guard.py`` in CI):

* **cold vs warm open** — ``analyze()`` on the matmul fixture with an
  empty store (full parse + liveness + store) against a second process'
  view of the same store (revive only).  The warm path must be >= 3x
  faster and, telemetry-verified, recompute *nothing*: no ``parse.*``
  spans, no ``liveness.*`` counters, exactly one ``artifacts.hits``.
* **sessions/sec** — a 4-worker :class:`~repro.service.SessionServer`
  under 8 concurrent clients, each running the full open -> allocate ->
  insert -> run -> close cycle against one shared binary, with every
  result checked bit-identical to the in-process API.  Measured twice:
  metrics plane off (the zero-cost-when-unobserved configuration the
  bench_guard floors assume) and armed (per-worker recorders + flush
  files + request tracing), recording the observed-mode ratio as the
  observability plane's ablation.

Also writes the paper-style table to
``benchmarks/results/service_bench.txt``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

from repro import telemetry
from repro.api import InstrumentOptions, analyze, open_binary
from repro.artifacts import ArtifactStore
from repro.codegen.snippets import IncrementVar
from repro.elf.writer import write_program
from repro.minicc import compile_source
from repro.minicc.workloads import matmul_source
from repro.patch.points import PointType
from repro.service import ServiceClient, SessionServer

from conftest import MATMUL_N, MATMUL_REPS

BENCH_JSON = Path(__file__).parent.parent / "BENCH_service.json"

#: timing repetitions; latencies are best-of (spread recorded)
REPEATS = 5

CLIENTS = 8
WORKERS = 4


def _timed(fn):
    best, times = None, []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        times.append(dt)
        if best is None or dt < best[1]:
            best = (out, dt)
    spread = (max(times) - min(times)) / min(times)
    return best[0], best[1], spread


def test_service_benchmark(record):
    prog = compile_source(matmul_source(MATMUL_N, MATMUL_REPS))
    elf = write_program(prog)
    opts = InstrumentOptions()

    with tempfile.TemporaryDirectory() as td:
        store_dir = os.path.join(td, "store")

        # -- cold: every repetition hits a fresh store ------------------
        def cold():
            st = ArtifactStore(tempfile.mkdtemp(dir=td))
            with telemetry.enabled() as rec:
                analyze(elf, opts, store=st)
            return rec.snapshot()

        cold_snap, cold_s, cold_spread = _timed(cold)
        assert cold_snap["counters"].get("artifacts.stores") == 1
        assert any(n.startswith("parse.")
                   for n in cold_snap["spans"]), "cold path must parse"

        # -- warm: revive from the store cold() seeded ------------------
        analyze(elf, opts, store=ArtifactStore(store_dir))

        def warm():
            with telemetry.enabled() as rec:
                analysis = analyze(elf, opts,
                                   store=ArtifactStore(store_dir))
            assert analysis.revived
            return rec.snapshot()

        warm_snap, warm_s, warm_spread = _timed(warm)
        counters = warm_snap["counters"]
        assert counters.get("artifacts.hits") == 1, counters
        assert not any(n.startswith("liveness.") for n in counters)
        assert not any(n.startswith("parse.")
                       for n in warm_snap["spans"]), \
            "warm open must not re-parse"

        speedup = cold_s / warm_s

        # -- in-process reference for bit-identity ----------------------
        edit = open_binary(elf, opts)
        c = edit.allocate_variable("calls")
        edit.insert(edit.points("main", PointType.FUNC_ENTRY),
                    IncrementVar(c))
        m, ev = edit.run_instrumented()
        reference = (ev.reason.name, list(m.x),
                     edit.read_variable(m, c))

        # -- sessions/sec: 8 concurrent clients, 4 workers --------------
        sock = os.path.join(td, "svc.sock")

        def hammer(**server_kw):
            results, errors = [], []

            def one_client():
                try:
                    with ServiceClient(sock) as cl, cl.open(elf) as s:
                        s.allocate("calls")
                        s.insert("main", "FUNC_ENTRY",
                                 {"kind": "increment", "var": "calls"})
                        r = s.run()
                        results.append(
                            (r["reason"], r["x"],
                             r["variables"]["calls"]))
                except Exception as exc:  # noqa: BLE001 — surfaced
                    errors.append(repr(exc))

            with SessionServer(sock, store=ArtifactStore(store_dir),
                               workers=WORKERS, **server_kw):
                threads = [threading.Thread(target=one_client)
                           for _ in range(CLIENTS)]
                t0 = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                wall = time.perf_counter() - t0
            assert not errors, errors
            assert len(results) == CLIENTS
            for got in results:
                assert got == list(reference) or tuple(got) == reference
            return wall

        # unobserved: the configuration the bench_guard floor holds for
        wall = hammer()
        sessions_per_sec = CLIENTS / wall
        # observed: metrics plane armed (per-worker recorders, request
        # tracing, periodic flushes) — the observability ablation
        wall_observed = hammer(
            metrics_dir=os.path.join(td, "metrics"),
            flush_interval=0.5)
        sessions_per_sec_observed = CLIENTS / wall_observed

        lines = [
            "Artifact store + session service "
            f"(matmul mutatee, N={MATMUL_N}, reps={MATMUL_REPS})",
            "",
            f"{'open path':<26}{'seconds':>9}{'spread':>8}",
            f"{'cold (parse+liveness)':<26}{cold_s:>9.4f}"
            f"{cold_spread:>7.1%}",
            f"{'warm (store revive)':<26}{warm_s:>9.4f}"
            f"{warm_spread:>7.1%}",
            "",
            f"warm speedup: {speedup:.1f}x "
            "(zero parse spans, zero liveness counters)",
            "",
            f"service: {CLIENTS} concurrent clients / {WORKERS} "
            f"workers: {sessions_per_sec:.1f} sessions/s "
            f"({wall:.2f}s wall), all bit-identical to in-process",
            f"observed (metrics armed): "
            f"{sessions_per_sec_observed:.1f} sessions/s "
            f"({wall_observed:.2f}s wall, "
            f"{wall_observed / wall:.2f}x unobserved wall)",
        ]
        record("service_bench", "\n".join(lines) + "\n")

        BENCH_JSON.write_text(json.dumps({
            "benchmark": "artifact_store_service",
            "matmul_n": MATMUL_N,
            "matmul_reps": MATMUL_REPS,
            "analyze_cold_s": round(cold_s, 5),
            "analyze_warm_s": round(warm_s, 5),
            "cold_spread": round(cold_spread, 3),
            "warm_spread": round(warm_spread, 3),
            # headline number (and the CI guard's key)
            "warm_speedup": round(speedup, 2),
            "warm_counters": counters,
            "clients": CLIENTS,
            "workers": WORKERS,
            "sessions_per_sec": round(sessions_per_sec, 2),
            "service_wall_s": round(wall, 3),
            # observability-plane ablation (not a guarded floor: the
            # armed path pays recorder locks + flush files by design)
            "sessions_per_sec_observed":
                round(sessions_per_sec_observed, 2),
            "service_wall_observed_s": round(wall_observed, 3),
        }, indent=2) + "\n")

    # acceptance bar: warm open >= 3x cold (ISSUE 7 criterion)
    assert speedup >= 3.0, f"warm open only {speedup:.2f}x faster"
