"""Ablation: the dead-register allocation optimisation (§4.3).

"When instrumentation needs registers, we attempt to use dead registers
... If such registers are available, spilling the contents can be
avoided."  Same mutatee, same BB-count instrumentation, one knob:
``use_dead_registers``.  Reported: registers spilled, trampoline size,
and simulated-cycle overhead — the isolated contribution of the
optimisation that explains the paper's x86-vs-RISC-V table shape.
"""

from __future__ import annotations

from conftest import MATMUL_N, MATMUL_REPS
from repro.api import open_binary
from repro.minicc import compile_source, matmul_source
from repro.sim import P550, StopReason
from repro.tools import count_basic_blocks


def _measure(program, use_dead_registers):
    b = open_binary(compile_source(program) if isinstance(program, str)
                    else program)
    b._patcher.use_dead_registers = use_dead_registers
    count_basic_blocks(b, "multiply")
    res = b.commit()
    m, ev = b.run_instrumented(timing=P550)
    assert ev.reason is StopReason.EXITED
    return res.stats, m


def test_dead_register_ablation(benchmark, record):
    program = compile_source(matmul_source(MATMUL_N, MATMUL_REPS))

    benchmark.pedantic(
        lambda: _measure(compile_source(matmul_source(6, 2)), True),
        rounds=3, iterations=1)

    base = open_binary(program)
    m0, ev0 = base.run_instrumented(timing=P550)
    assert ev0.reason is StopReason.EXITED

    stats_on, m_on = _measure(program, True)
    stats_off, m_off = _measure(program, False)

    ov_on = 100.0 * (m_on.ucycles - m0.ucycles) / m0.ucycles
    ov_off = 100.0 * (m_off.ucycles - m0.ucycles) / m0.ucycles

    rows = [
        "Ablation: dead-register allocation (BB-count on multiply, "
        f"{MATMUL_N}x{MATMUL_N} x{MATMUL_REPS})",
        "",
        f"{'':24}{'dead-reg ON':>14}{'dead-reg OFF':>14}",
        f"{'registers spilled':24}{stats_on.spilled_regs:>14}"
        f"{stats_off.spilled_regs:>14}",
        f"{'dead registers used':24}{stats_on.dead_regs_used:>14}"
        f"{stats_off.dead_regs_used:>14}",
        f"{'trampoline bytes':24}{stats_on.trampoline_bytes:>14}"
        f"{stats_off.trampoline_bytes:>14}",
        f"{'cycle overhead':24}{ov_on:>13.1f}%{ov_off:>13.1f}%",
        "",
        f"optimisation saves {ov_off - ov_on:.1f} percentage points of "
        "overhead",
        "(the paper credits this for RISC-V's 15.3% vs x86's 66.9%)",
    ]
    record("ablation_deadreg", "\n".join(rows))

    assert stats_on.spilled_regs < stats_off.spilled_regs
    assert stats_on.trampoline_bytes < stats_off.trampoline_bytes
    assert ov_on < ov_off
    # outputs agree
    assert bytes(m_on.stdout).split()[1] == bytes(m_off.stdout).split()[1]
