"""Ablation: interprocedural (summary-based) liveness vs the
intraprocedural baseline.

Dyninst's liveness can use callee summaries to prove more registers
dead at call-adjacent instrumentation points.  This benchmark counts
the dead registers each analysis finds at every block entry of a
call-heavy workload and measures the instrumentation-overhead effect.
"""

from __future__ import annotations

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.dataflow import analyze_interprocedural, analyze_liveness
from repro.minicc import compile_source, fib_source
from repro.patch import Patcher, PointType
from repro.sim import P550, StopReason
from repro.symtab import Symtab
from repro.parse import parse_binary

N = 14


def _dead_counts(co):
    intra_total = sharp_total = points = 0
    ip = analyze_interprocedural(co)
    for fn in co.functions.values():
        intra = analyze_liveness(fn)
        sharp = ip.result_for(fn)
        for block in fn.blocks.values():
            if not block.insns:
                continue
            points += 1
            intra_total += len(intra.dead_before(block.start))
            sharp_total += len(sharp.dead_before(block.start))
    return points, intra_total, sharp_total


def _overhead(program, interproc):
    base = open_binary(program)
    m0, _ = base.run_instrumented(timing=P550)
    b = open_binary(program)
    b._patcher = Patcher(b.symtab, b.cfg,
                         interprocedural_liveness=interproc)
    c = b.allocate_variable("bb")
    for fn in b.functions():
        if fn.name in ("fib", "main"):
            for pt in b.points(fn, PointType.BLOCK_ENTRY):
                b.insert(pt, IncrementVar(c))
    m1, ev = b.run_instrumented(timing=P550)
    assert ev.reason is StopReason.EXITED
    return 100.0 * (m1.ucycles - m0.ucycles) / m0.ucycles


def test_interprocedural_liveness_ablation(benchmark, record):
    program = compile_source(fib_source(N))
    co = parse_binary(Symtab.from_program(program))

    points, intra, sharp = benchmark(lambda: _dead_counts(co))

    ov_intra = _overhead(program, False)
    ov_sharp = _overhead(program, True)

    rows = [
        f"Ablation: interprocedural liveness (fib({N}), call-heavy)",
        "",
        f"  block-entry points analysed     : {points}",
        f"  dead regs found (intraproc)     : {intra} "
        f"({intra / points:.1f}/point)",
        f"  dead regs found (interproc)     : {sharp} "
        f"({sharp / points:.1f}/point)",
        f"  extra dead registers            : {sharp - intra} "
        f"(+{100 * (sharp - intra) / max(intra, 1):.0f}%)",
        "",
        f"  BB-count overhead, intraproc    : {ov_intra:.1f}%",
        f"  BB-count overhead, interproc    : {ov_sharp:.1f}%",
        "",
        "  callee summaries free argument registers at call sites;",
        "  the demand fixpoint keeps pass-through registers safe",
        "  (validated adversarially in tests/test_interproc_liveness.py).",
    ]
    record("ablation_interproc", "\n".join(rows))

    assert sharp >= intra
    # the sharpened engine must never be slower
    assert ov_sharp <= ov_intra + 0.5
