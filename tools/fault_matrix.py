#!/usr/bin/env python3
"""Repository shim for the fault-injection matrix runner.

Runs :mod:`repro.tools.fault_matrix` from a source checkout without
needing ``PYTHONPATH=src``::

    python tools/fault_matrix.py [--json fault-matrix.json] [--fib N]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.tools.fault_matrix import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
