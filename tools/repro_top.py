#!/usr/bin/env python3
"""Repository shim for the live service operator console.

Runs :mod:`repro.tools.repro_top` from a source checkout without
needing ``PYTHONPATH=src``::

    python tools/repro_top.py --socket /tmp/repro.sock [--interval 2]
    python tools/repro_top.py --socket /tmp/repro.sock --once [--json]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.tools.repro_top import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
