#!/usr/bin/env python3
"""Repository shim for the telemetry reporter.

Runs :mod:`repro.tools.stats` from a source checkout without needing
``PYTHONPATH=src``::

    python tools/stats.py [--json] [--workload matmul] ...
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.tools.stats import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
