#!/usr/bin/env python3
"""Out-of-process smoke test for the session service.

Starts a real server (``python -m repro.service``) as a subprocess,
then runs N concurrent clients through the full instrument-and-run
cycle against one shared binary, checking every result bit-identical
to the in-process API::

    python tools/service_smoke.py [--clients 8] [--workers 2]
        [--metrics-dump service-metrics.json]

The server boots with its observability plane armed; after the client
burst the ``metrics`` op is scraped and checked: aggregated request
counters must equal the sum of the per-worker snapshots, and the
Prometheus exposition must parse.  ``--metrics-dump`` writes the raw
metrics response to a file (the CI artifact).

Exit status 0 when every client matched and the metrics checks held;
1 otherwise.  This is the CI job's proof that the service boots from
the CLI, shards sessions across forked workers, and agrees with
:func:`repro.api.open_binary` — the pytest suites cover the same
properties in-process.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api import open_binary  # noqa: E402
from repro.codegen.snippets import IncrementVar  # noqa: E402
from repro.elf.writer import write_program  # noqa: E402
from repro.minicc import compile_source  # noqa: E402
from repro.minicc.workloads import fib_source  # noqa: E402
from repro.patch.points import PointType  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.telemetry.aggregate import parse_prometheus  # noqa: E402


def wait_for_socket(path: str, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            try:
                ServiceClient(path, timeout=2.0).close()
                return
            except OSError:
                pass
        time.sleep(0.05)
    raise TimeoutError(f"server socket {path} never came up")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="boot a service subprocess, hammer it with "
                    "concurrent clients, compare to in-process results")
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--metrics-dump", default=None,
                    help="write the scraped metrics response here")
    args = ap.parse_args(argv)

    elf = write_program(compile_source(fib_source(8)))

    edit = open_binary(elf)
    c = edit.allocate_variable("calls")
    edit.insert(edit.points("fib", PointType.FUNC_ENTRY),
                IncrementVar(c))
    m, ev = edit.run_instrumented()
    reference = (ev.reason.name, list(m.x), edit.read_variable(m, c))
    print(f"in-process reference: {reference[0]}, "
          f"calls={reference[2]}")

    with tempfile.TemporaryDirectory() as td:
        sock = os.path.join(td, "svc.sock")
        env = dict(os.environ,
                   PYTHONPATH=str(REPO / "src"))
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.service",
             "--socket", sock, "--store", os.path.join(td, "store"),
             "--workers", str(args.workers),
             "--metrics-dir", os.path.join(td, "metrics"),
             "--flush-interval", "0.2"],
            env=env)
        metrics = None
        try:
            wait_for_socket(sock)
            results, errors = [], []

            def one_client(i: int) -> None:
                try:
                    with ServiceClient(sock,
                                       trace=f"smoke-{i}") as cl, \
                            cl.open(elf) as s:
                        s.allocate("calls")
                        s.insert("fib", "FUNC_ENTRY",
                                 {"kind": "increment", "var": "calls"})
                        r = s.run()
                        results.append(
                            (i, cl.ping()["pid"], r["reason"],
                             r["x"], r["variables"]["calls"]))
                except Exception as exc:  # noqa: BLE001 — reported
                    errors.append(f"client {i}: {exc!r}")

            t0 = time.perf_counter()
            threads = [threading.Thread(target=one_client, args=(i,))
                       for i in range(args.clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - t0
            # let every worker's periodic flusher publish the burst,
            # then scrape the fleet-wide metrics op
            time.sleep(1.0)
            with ServiceClient(sock, trace="smoke-scrape") as cl:
                metrics = cl.metrics()
        finally:
            server.terminate()
            server.wait(timeout=10)

    for msg in errors:
        print(f"service_smoke: FAIL: {msg}", file=sys.stderr)
    bad = 0
    pids = set()
    for i, pid, reason, x, calls in results:
        pids.add(pid)
        if (reason, x, calls) != reference:
            print(f"service_smoke: FAIL: client {i} diverged "
                  f"(reason={reason}, calls={calls})", file=sys.stderr)
            bad += 1
    bad += check_metrics(metrics, args.clients)
    if args.metrics_dump and metrics is not None:
        Path(args.metrics_dump).write_text(
            json.dumps(metrics, indent=2) + "\n")
        print(f"service_smoke: metrics dumped to {args.metrics_dump}")
    if errors or bad or len(results) != args.clients:
        return 1
    print(f"service_smoke: OK — {args.clients} clients across "
          f"{len(pids)} worker pid(s) in {wall:.2f}s, all "
          f"bit-identical to in-process; metrics aggregation checked")
    return 0


def check_metrics(metrics: dict | None, clients: int) -> int:
    """The aggregation contract: merged counters equal the sum of the
    per-worker snapshots, request totals match the traffic we sent,
    and the exposition text parses.  Returns the failure count."""
    bad = 0
    if metrics is None:
        print("service_smoke: FAIL: metrics scrape never ran",
              file=sys.stderr)
        return 1
    merged = metrics["merged"]["counters"]
    by_workers: dict[str, int] = {}
    for w in metrics["workers"]:
        for name, n in w["snapshot"]["counters"].items():
            by_workers[name] = by_workers.get(name, 0) + n
    for name, total in sorted(merged.items()):
        if by_workers.get(name) != total:
            print(f"service_smoke: FAIL: merged {name}={total} != "
                  f"sum over workers {by_workers.get(name)}",
                  file=sys.stderr)
            bad += 1
    if merged.get("service.op.open") != clients:
        print(f"service_smoke: FAIL: aggregated "
              f"service.op.open={merged.get('service.op.open')} "
              f"(expected {clients})", file=sys.stderr)
        bad += 1
    try:
        series = parse_prometheus(metrics["exposition"])
    except ValueError as exc:
        print(f"service_smoke: FAIL: exposition does not parse: "
              f"{exc}", file=sys.stderr)
        return bad + 1
    if series.get("repro_service_op_open") != merged.get(
            "service.op.open"):
        print("service_smoke: FAIL: exposition disagrees with the "
              "merged snapshot", file=sys.stderr)
        bad += 1
    hist = metrics["merged"]["histograms"].get("service.op.open.us")
    if not hist or hist.get("count", 0) < clients:
        print(f"service_smoke: FAIL: open-latency histogram missing "
              f"or short: {hist!r}", file=sys.stderr)
        bad += 1
    if not bad:
        workers = len(metrics["workers"])
        print(f"service_smoke: metrics OK — {workers} worker "
              f"snapshots, merged == per-worker sums, exposition "
              f"parses ({len(series)} series)")
    return bad


if __name__ == "__main__":
    sys.exit(main())
