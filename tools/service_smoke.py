#!/usr/bin/env python3
"""Out-of-process smoke test for the session service.

Starts a real server (``python -m repro.service``) as a subprocess,
then runs N concurrent clients through the full instrument-and-run
cycle against one shared binary, checking every result bit-identical
to the in-process API::

    python tools/service_smoke.py [--clients 8] [--workers 2]
        [--metrics-dump service-metrics.json]

The server boots with its observability plane armed; after the client
burst the ``metrics`` op is scraped and checked: aggregated request
counters must equal the sum of the per-worker snapshots, and the
Prometheus exposition must parse.  ``--metrics-dump`` writes the raw
metrics response to a file (the CI artifact).

``--chaos`` runs the resilience acceptance instead (docs/SERVICE.md,
"Failure modes and recovery"): against a live supervised multi-worker
server, it

* ``kill -9``\\ s a worker mid-load and checks that no capacity is
  lost — every client finishes its cycles bit-identically, clients see
  only *retryable* errors, and the respawn becomes visible through
  ``healthz`` (``supervisor.respawns_total``, all workers alive);
* replays the burst under each injected fault site
  (``service.worker.abort``, ``service.conn.drop``,
  ``service.commit``), armed fleet-once via ``REPRO_SERVICE_FAULTS``
  token files, checking the same invariants.

``--chaos-report`` writes the phase-by-phase JSON report (the CI
chaos-smoke artifact).

Exit status 0 when every check held; 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api import open_binary  # noqa: E402
from repro.codegen.snippets import IncrementVar  # noqa: E402
from repro.elf.writer import write_program  # noqa: E402
from repro.minicc import compile_source  # noqa: E402
from repro.minicc.workloads import fib_source  # noqa: E402
from repro.patch.points import PointType  # noqa: E402
from repro.service import ServiceClient, ServiceError  # noqa: E402
from repro.telemetry.aggregate import parse_prometheus  # noqa: E402

#: fault sites the chaos mode injects, one server boot each
CHAOS_SITES = ("service.worker.abort", "service.conn.drop",
               "service.commit")


def wait_for_socket(path: str, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            try:
                ServiceClient(path, timeout=2.0).close()
                return
            except (OSError, ServiceError):
                pass  # not accepting yet (ConnectFailed) — keep waiting
        time.sleep(0.05)
    raise TimeoutError(f"server socket {path} never came up")


def build_reference() -> tuple[bytes, tuple]:
    """The shared mutatee and its in-process ground truth."""
    elf = write_program(compile_source(fib_source(8)))
    edit = open_binary(elf)
    c = edit.allocate_variable("calls")
    edit.insert(edit.points("fib", PointType.FUNC_ENTRY),
                IncrementVar(c))
    m, ev = edit.run_instrumented()
    return elf, (ev.reason.name, list(m.x), edit.read_variable(m, c))


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="boot a service subprocess, hammer it with "
                    "concurrent clients, compare to in-process results")
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--metrics-dump", default=None,
                    help="write the scraped metrics response here")
    ap.add_argument("--chaos", action="store_true",
                    help="run the resilience acceptance: kill -9 a "
                         "worker mid-load, then replay under each "
                         "injected fault site")
    ap.add_argument("--chaos-report", default=None,
                    help="write the chaos phase report (JSON) here")
    args = ap.parse_args(argv)
    if args.chaos:
        return chaos_main(args)
    return smoke_main(args)


# -- plain smoke mode ------------------------------------------------------

def smoke_main(args: argparse.Namespace) -> int:
    elf, reference = build_reference()
    print(f"in-process reference: {reference[0]}, "
          f"calls={reference[2]}")

    with tempfile.TemporaryDirectory() as td:
        sock = os.path.join(td, "svc.sock")
        env = dict(os.environ,
                   PYTHONPATH=str(REPO / "src"))
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.service",
             "--socket", sock, "--store", os.path.join(td, "store"),
             "--workers", str(args.workers),
             "--metrics-dir", os.path.join(td, "metrics"),
             "--flush-interval", "0.2"],
            env=env)
        metrics = None
        try:
            wait_for_socket(sock)
            results, errors = [], []

            def one_client(i: int) -> None:
                try:
                    with ServiceClient(sock,
                                       trace=f"smoke-{i}") as cl, \
                            cl.open(elf) as s:
                        s.allocate("calls")
                        s.insert("fib", "FUNC_ENTRY",
                                 {"kind": "increment", "var": "calls"})
                        r = s.run()
                        results.append(
                            (i, cl.ping()["pid"], r["reason"],
                             r["x"], r["variables"]["calls"]))
                except Exception as exc:  # noqa: BLE001 — reported
                    errors.append(f"client {i}: {exc!r}")

            t0 = time.perf_counter()
            threads = [threading.Thread(target=one_client, args=(i,))
                       for i in range(args.clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - t0
            # let every worker's periodic flusher publish the burst,
            # then scrape the fleet-wide metrics op
            time.sleep(1.0)
            with ServiceClient(sock, trace="smoke-scrape") as cl:
                metrics = cl.metrics()
        finally:
            server.terminate()
            server.wait(timeout=10)

    for msg in errors:
        print(f"service_smoke: FAIL: {msg}", file=sys.stderr)
    bad = 0
    pids = set()
    for i, pid, reason, x, calls in results:
        pids.add(pid)
        if (reason, x, calls) != reference:
            print(f"service_smoke: FAIL: client {i} diverged "
                  f"(reason={reason}, calls={calls})", file=sys.stderr)
            bad += 1
    bad += check_metrics(metrics, args.clients)
    if args.metrics_dump and metrics is not None:
        Path(args.metrics_dump).write_text(
            json.dumps(metrics, indent=2) + "\n")
        print(f"service_smoke: metrics dumped to {args.metrics_dump}")
    if errors or bad or len(results) != args.clients:
        return 1
    print(f"service_smoke: OK — {args.clients} clients across "
          f"{len(pids)} worker pid(s) in {wall:.2f}s, all "
          f"bit-identical to in-process; metrics aggregation checked")
    return 0


def check_metrics(metrics: dict | None, clients: int) -> int:
    """The aggregation contract: merged counters equal the sum of the
    per-worker snapshots, request totals match the traffic we sent,
    and the exposition text parses.  Returns the failure count."""
    bad = 0
    if metrics is None:
        print("service_smoke: FAIL: metrics scrape never ran",
              file=sys.stderr)
        return 1
    merged = metrics["merged"]["counters"]
    by_workers: dict[str, int] = {}
    for w in metrics["workers"]:
        for name, n in w["snapshot"]["counters"].items():
            by_workers[name] = by_workers.get(name, 0) + n
    for name, total in sorted(merged.items()):
        if by_workers.get(name) != total:
            print(f"service_smoke: FAIL: merged {name}={total} != "
                  f"sum over workers {by_workers.get(name)}",
                  file=sys.stderr)
            bad += 1
    if merged.get("service.op.open") != clients:
        print(f"service_smoke: FAIL: aggregated "
              f"service.op.open={merged.get('service.op.open')} "
              f"(expected {clients})", file=sys.stderr)
        bad += 1
    try:
        series = parse_prometheus(metrics["exposition"])
    except ValueError as exc:
        print(f"service_smoke: FAIL: exposition does not parse: "
              f"{exc}", file=sys.stderr)
        return bad + 1
    if series.get("repro_service_op_open") != merged.get(
            "service.op.open"):
        print("service_smoke: FAIL: exposition disagrees with the "
              "merged snapshot", file=sys.stderr)
        bad += 1
    hist = metrics["merged"]["histograms"].get("service.op.open.us")
    if not hist or hist.get("count", 0) < clients:
        print(f"service_smoke: FAIL: open-latency histogram missing "
              f"or short: {hist!r}", file=sys.stderr)
        bad += 1
    if not bad:
        workers = len(metrics["workers"])
        print(f"service_smoke: metrics OK — {workers} worker "
              f"snapshots, merged == per-worker sums, exposition "
              f"parses ({len(series)} series)")
    return bad


# -- chaos mode ------------------------------------------------------------

def boot_server(td: str, tag: str, workers: int,
                extra_env: dict | None = None):
    """Boot one supervised server subprocess; returns (proc, socket)."""
    sock = os.path.join(td, f"{tag}.sock")
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    if extra_env:
        env.update(extra_env)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service",
         "--socket", sock, "--store", os.path.join(td, "store"),
         "--workers", str(workers),
         "--metrics-dir", os.path.join(td, f"{tag}-metrics"),
         "--flush-interval", "0.2"],
        env=env)
    wait_for_socket(sock)
    return proc, sock


def stop_server(proc: subprocess.Popen) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)


def run_cycle(sock: str, elf: bytes, trace: str,
              attempts: int = 10) -> tuple[tuple, int]:
    """One full session cycle (open/allocate/insert/commit/run),
    redone from scratch — fresh client, fresh session — every time a
    *retryable* failure lands.  Returns (result, retries); permanent
    errors propagate."""
    last: ServiceError | None = None
    for attempt in range(attempts):
        try:
            with ServiceClient(sock, timeout=15.0, trace=trace,
                               retries=2) as cl, cl.open(elf) as s:
                s.allocate("calls")
                s.insert("fib", "FUNC_ENTRY",
                         {"kind": "increment", "var": "calls"})
                s.commit()
                r = s.run()
                return ((r["reason"], r["x"], r["variables"]["calls"]),
                        attempt)
        except ServiceError as exc:
            if not exc.retryable:
                raise
            last = exc
            time.sleep((exc.retry_after or 0.05) +
                       random.uniform(0.0, 0.05))
    raise RuntimeError(
        f"cycle {trace} still failing after {attempts} attempts: "
        f"{last!r}")


def healthz_snapshot(sock: str) -> dict:
    with ServiceClient(sock, timeout=5.0, retries=4) as cl:
        return cl.healthz()


def pick_worker_pid(sock: str) -> int:
    sup = healthz_snapshot(sock).get("supervisor") or {}
    alive = [w["pid"] for w in sup.get("workers", [])
             if w.get("alive") and w.get("pid")]
    if not alive:
        raise RuntimeError("no alive supervised worker to kill")
    return alive[0]


def wait_for_respawn(sock: str, min_respawns: int,
                     timeout: float = 15.0) -> dict:
    """Poll ``healthz`` until the supervisor reports the respawn and a
    fully-alive fleet; returns the final supervisor view."""
    deadline = time.monotonic() + timeout
    last: dict = {}
    while time.monotonic() < deadline:
        try:
            resp = healthz_snapshot(sock)
        except (ServiceError, OSError):
            time.sleep(0.1)
            continue
        last = resp.get("supervisor") or {}
        workers = last.get("workers", [])
        if (last.get("respawns_total", 0) >= min_respawns
                and workers and all(w.get("alive") for w in workers)
                and resp.get("healthy")):
            return last
        time.sleep(0.1)
    raise TimeoutError(
        f"fleet never recovered (last supervisor view: {last!r})")


def chaos_burst(sock: str, elf: bytes, reference: tuple, tag: str,
                clients: int, cycles: int,
                mid_burst=None) -> dict:
    """Run *clients* threads through *cycles* session cycles each,
    optionally firing *mid_burst()* once traffic is flowing.  Every
    cycle must finish bit-identically to *reference*; only retryable
    errors may surface (the cycle runner redoes those)."""
    started = threading.Event()
    retries = [0]
    failures: list[str] = []
    lock = threading.Lock()

    def one_client(i: int) -> None:
        for cycle in range(cycles):
            try:
                result, attempts = run_cycle(
                    sock, elf, trace=f"{tag}-{i}.{cycle}")
            except Exception as exc:  # noqa: BLE001 — reported
                with lock:
                    failures.append(
                        f"client {i} cycle {cycle}: {exc!r}")
                return
            with lock:
                retries[0] += attempts
                if result != reference:
                    failures.append(
                        f"client {i} cycle {cycle} diverged: "
                        f"reason={result[0]} calls={result[2]}")
            if cycle == 0:
                started.set()

    t0 = time.perf_counter()
    threads = [threading.Thread(target=one_client, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    if mid_burst is not None:
        started.wait(timeout=30)
        try:
            mid_burst()
        except Exception as exc:  # noqa: BLE001 — reported
            with lock:
                failures.append(f"mid-burst action: {exc!r}")
    for t in threads:
        t.join()
    return {"clients": clients, "cycles_per_client": cycles,
            "retries": retries[0], "failures": failures,
            "wall_s": round(time.perf_counter() - t0, 2)}


def chaos_kill_phase(td: str, elf: bytes, reference: tuple,
                     clients: int, workers: int) -> dict:
    """Phase 1: ``kill -9`` a worker mid-load.  No capacity may be
    lost — every cycle completes bit-identically (possibly after
    retryable errors), and the respawn shows up in ``healthz``."""
    proc, sock = boot_server(td, "kill9", workers)
    phase = {"name": "kill9", "ok": False}
    try:
        victim = {"pid": None}

        def kill_one() -> None:
            victim["pid"] = pick_worker_pid(sock)
            os.kill(victim["pid"], signal.SIGKILL)

        burst = chaos_burst(sock, elf, reference, "kill9",
                            clients=clients, cycles=4,
                            mid_burst=kill_one)
        phase.update(burst)
        phase["killed_pid"] = victim["pid"]
        sup = wait_for_respawn(sock, min_respawns=1)
        phase["respawns_total"] = sup.get("respawns_total", 0)
        phase["fleet_alive"] = all(
            w.get("alive") for w in sup.get("workers", []))
        phase["ok"] = (not burst["failures"]
                       and phase["respawns_total"] >= 1
                       and phase["fleet_alive"])
    except Exception as exc:  # noqa: BLE001 — reported
        phase.setdefault("failures", []).append(repr(exc))
    finally:
        stop_server(proc)
    return phase


def chaos_fault_phase(td: str, elf: bytes, reference: tuple,
                      site: str, workers: int) -> dict:
    """One injected-fault phase: boot a fleet with *site* armed
    (fleet-once via a token file, on its third occurrence so healthy
    traffic flows first), hammer it, and require the same invariants
    as the kill phase — plus proof the fault actually fired."""
    token = os.path.join(td, f"{site}.token")
    proc, sock = boot_server(
        td, site.replace(".", "-"), workers,
        extra_env={"REPRO_SERVICE_FAULTS": f"{site}@3:{token}"})
    phase = {"name": site, "ok": False}
    try:
        burst = chaos_burst(sock, elf, reference, site,
                            clients=max(4, workers * 2), cycles=3)
        phase.update(burst)
        phase["fired"] = os.path.exists(token)
        if site == "service.worker.abort":
            # the injected abort really exits the worker: the
            # supervisor must have respawned it
            sup = wait_for_respawn(sock, min_respawns=1)
            phase["respawns_total"] = sup.get("respawns_total", 0)
            recovered = phase["respawns_total"] >= 1
        else:
            recovered = healthz_snapshot(sock).get("healthy", False)
        phase["ok"] = (not burst["failures"] and phase["fired"]
                       and burst["retries"] >= 1 and recovered)
    except Exception as exc:  # noqa: BLE001 — reported
        phase.setdefault("failures", []).append(repr(exc))
    finally:
        stop_server(proc)
    return phase


def chaos_main(args: argparse.Namespace) -> int:
    workers = max(2, args.workers)
    elf, reference = build_reference()
    print(f"chaos: in-process reference: {reference[0]}, "
          f"calls={reference[2]}; {workers} workers, "
          f"{args.clients} clients")
    report = {"mode": "chaos", "workers": workers,
              "reference": {"reason": reference[0],
                            "calls": reference[2]},
              "phases": []}
    with tempfile.TemporaryDirectory() as td:
        report["phases"].append(
            chaos_kill_phase(td, elf, reference,
                             clients=args.clients, workers=workers))
        for site in CHAOS_SITES:
            report["phases"].append(
                chaos_fault_phase(td, elf, reference, site,
                                  workers=workers))
    ok = all(p.get("ok") for p in report["phases"])
    report["ok"] = ok
    for p in report["phases"]:
        status = "OK" if p.get("ok") else "FAIL"
        extra = ""
        if "respawns_total" in p:
            extra = f", respawns={p['respawns_total']}"
        print(f"chaos: {status}: {p['name']} — "
              f"retries={p.get('retries')}{extra}, "
              f"wall={p.get('wall_s')}s")
        for msg in p.get("failures", []):
            print(f"chaos:   {p['name']}: {msg}", file=sys.stderr)
    if args.chaos_report:
        Path(args.chaos_report).write_text(
            json.dumps(report, indent=2) + "\n")
        print(f"chaos: report written to {args.chaos_report}")
    if ok:
        print("chaos: OK — kill -9 lost no capacity, every injected "
              "fault surfaced as a retryable error, all results "
              "bit-identical")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
