#!/usr/bin/env python3
"""Out-of-process smoke test for the session service.

Starts a real server (``python -m repro.service``) as a subprocess,
then runs N concurrent clients through the full instrument-and-run
cycle against one shared binary, checking every result bit-identical
to the in-process API::

    python tools/service_smoke.py [--clients 8] [--workers 2]

Exit status 0 when every client matched; 1 otherwise.  This is the CI
job's proof that the service boots from the CLI, shards sessions
across forked workers, and agrees with :func:`repro.api.open_binary`
— the pytest suites cover the same properties in-process.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api import open_binary  # noqa: E402
from repro.codegen.snippets import IncrementVar  # noqa: E402
from repro.elf.writer import write_program  # noqa: E402
from repro.minicc import compile_source  # noqa: E402
from repro.minicc.workloads import fib_source  # noqa: E402
from repro.patch.points import PointType  # noqa: E402
from repro.service import ServiceClient  # noqa: E402


def wait_for_socket(path: str, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            try:
                ServiceClient(path, timeout=2.0).close()
                return
            except OSError:
                pass
        time.sleep(0.05)
    raise TimeoutError(f"server socket {path} never came up")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="boot a service subprocess, hammer it with "
                    "concurrent clients, compare to in-process results")
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--workers", type=int, default=2)
    args = ap.parse_args(argv)

    elf = write_program(compile_source(fib_source(8)))

    edit = open_binary(elf)
    c = edit.allocate_variable("calls")
    edit.insert(edit.points("fib", PointType.FUNC_ENTRY),
                IncrementVar(c))
    m, ev = edit.run_instrumented()
    reference = (ev.reason.name, list(m.x), edit.read_variable(m, c))
    print(f"in-process reference: {reference[0]}, "
          f"calls={reference[2]}")

    with tempfile.TemporaryDirectory() as td:
        sock = os.path.join(td, "svc.sock")
        env = dict(os.environ,
                   PYTHONPATH=str(REPO / "src"))
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.service",
             "--socket", sock, "--store", os.path.join(td, "store"),
             "--workers", str(args.workers)],
            env=env)
        try:
            wait_for_socket(sock)
            results, errors = [], []

            def one_client(i: int) -> None:
                try:
                    with ServiceClient(sock) as cl, cl.open(elf) as s:
                        s.allocate("calls")
                        s.insert("fib", "FUNC_ENTRY",
                                 {"kind": "increment", "var": "calls"})
                        r = s.run()
                        results.append(
                            (i, cl.ping()["pid"], r["reason"],
                             r["x"], r["variables"]["calls"]))
                except Exception as exc:  # noqa: BLE001 — reported
                    errors.append(f"client {i}: {exc!r}")

            t0 = time.perf_counter()
            threads = [threading.Thread(target=one_client, args=(i,))
                       for i in range(args.clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - t0
        finally:
            server.terminate()
            server.wait(timeout=10)

    for msg in errors:
        print(f"service_smoke: FAIL: {msg}", file=sys.stderr)
    bad = 0
    pids = set()
    for i, pid, reason, x, calls in results:
        pids.add(pid)
        if (reason, x, calls) != reference:
            print(f"service_smoke: FAIL: client {i} diverged "
                  f"(reason={reason}, calls={calls})", file=sys.stderr)
            bad += 1
    if errors or bad or len(results) != args.clients:
        return 1
    print(f"service_smoke: OK — {args.clients} clients across "
          f"{len(pids)} worker pid(s) in {wall:.2f}s, all "
          f"bit-identical to in-process")
    return 0


if __name__ == "__main__":
    sys.exit(main())
