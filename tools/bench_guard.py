#!/usr/bin/env python3
"""Repository shim for the performance regression guard.

Runs :mod:`repro.tools.bench_guard` from a source checkout without
needing ``PYTHONPATH=src``::

    python tools/bench_guard.py [--json BENCH_sim.json] [--floor 3.0]
        [--service-json BENCH_service.json] [--warm-floor 3.0]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.tools.bench_guard import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
