#!/usr/bin/env python3
"""Repository shim for the mutatee execution profiler.

Runs :mod:`repro.tools.profile` from a source checkout without needing
``PYTHONPATH=src``::

    python tools/profile.py --perfetto out.json --flame out.folded
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.tools.profile import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
