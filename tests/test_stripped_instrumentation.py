"""Instrumenting stripped binaries (paper §2.1: "Dyninst analyzes the
binary opportunistically in that it can operate on a binary without
symbols or debugging information").

The binary is stripped of its symbol table; functions must be recovered
from the entry point, call traversal, and gap parsing — and the
recovered functions must be instrumentable.
"""

import pytest

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.elf.writer import image_from_program, write_elf
from repro.minicc import compile_source, fib_source
from repro.patch import PointType, function_entry
from repro.sim import StopReason


def strip(program):
    image = image_from_program(program, emit_attributes=True)
    image.symbols = []
    return write_elf(image)


class TestStrippedInstrumentation:
    def test_functions_recovered_by_traversal(self):
        blob = strip(compile_source(fib_source(8)))
        b = open_binary(blob)
        # no symbols: functions are `_entry` + call-discovered
        names = {f.name for f in b.functions()}
        assert "_entry" in names
        assert all(not n or n.startswith(("func_", "gap_", "_entry"))
                   for n in names)
        # fib itself must have been found through main's call
        assert len(b.functions()) >= 4

    def test_recovered_function_instrumentable(self):
        program = compile_source(fib_source(8))
        blob = strip(program)
        b = open_binary(blob)
        # locate the recursive function structurally: it calls itself
        rec = next(f for f in b.functions() if f.entry in f.callees)
        c = b.allocate_variable("calls")
        b.insert(function_entry(rec), IncrementVar(c))
        m, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert bytes(m.stdout).startswith(b"21\n")  # fib(8)
        assert m.mem.read_int(c.address, 8) == 67

    def test_stripped_isa_discovery_still_works(self):
        blob = strip(compile_source(fib_source(4)))
        b = open_binary(blob)
        assert b.isa.supports("c")  # .riscv.attributes survives stripping

    def test_block_instrumentation_on_stripped(self):
        program = compile_source(fib_source(7))
        blob = strip(program)
        b = open_binary(blob)
        rec = next(f for f in b.functions() if f.entry in f.callees)
        c = b.allocate_variable("bb")
        for pt in b.points(rec, PointType.BLOCK_ENTRY):
            b.insert(pt, IncrementVar(c))
        m, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert bytes(m.stdout).startswith(b"13\n")
        assert m.mem.read_int(c.address, 8) > 0
