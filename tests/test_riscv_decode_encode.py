"""Decoder/encoder tests, including the hypothesis round-trip property
that pins every spec-table row: encode(fields) then decode must recover
the same mnemonic and fields.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.riscv.decoder import DecodeError, decode, decode_all, decode_word
from repro.riscv.encoder import encode, encode_fields, instruction_bytes, make
from repro.riscv.opcodes import all_specs, by_mnemonic, lookup_word


class TestDecodeBasics:
    def test_add(self):
        ins = decode_word(encode("add", rd=3, rs1=4, rs2=5))
        assert ins.mnemonic == "add"
        assert ins.fields["rd"] == 3
        assert ins.fields["rs1"] == 4
        assert ins.fields["rs2"] == 5

    def test_load_negative_offset(self):
        ins = decode_word(encode("ld", rd=10, rs1=2, imm=-16))
        assert ins.imm == -16

    def test_branch_offset(self):
        ins = decode_word(encode("bne", rs1=5, rs2=6, imm=-64))
        assert ins.imm == -64

    def test_lui_field_value(self):
        ins = decode_word(encode("lui", rd=7, imm=0x12345))
        assert ins.fields["imm"] == 0x12345

    def test_shift64_shamt_above_31(self):
        ins = decode_word(encode("srai", rd=1, rs1=1, shamt=63))
        assert ins.mnemonic == "srai"
        assert ins.fields["shamt"] == 63

    def test_shift32_distinct_from_shift64(self):
        assert decode_word(encode("sraiw", rd=1, rs1=1, shamt=31)).mnemonic == "sraiw"

    def test_csr_instruction(self):
        ins = decode_word(encode("csrrs", rd=10, csr=0xC00, rs1=0))
        assert ins.fields["csr"] == 0xC00

    def test_csr_immediate_form(self):
        ins = decode_word(encode("csrrwi", rd=1, csr=0x001, zimm=17))
        assert ins.fields["zimm"] == 17

    def test_ecall_vs_ebreak(self):
        assert decode_word(encode("ecall")).mnemonic == "ecall"
        assert decode_word(encode("ebreak")).mnemonic == "ebreak"

    def test_amo_aq_rl_bits_preserved(self):
        w = encode("amoadd.w", rd=1, rs1=2, rs2=3, aq=1, rl=1)
        ins = decode_word(w)
        assert ins.mnemonic == "amoadd.w"
        assert ins.fields["aq"] == 1 and ins.fields["rl"] == 1

    def test_fp_rounding_mode_free_field(self):
        w = encode("fadd.d", rd=1, rs1=2, rs2=3, rm=0)
        assert decode_word(w).mnemonic == "fadd.d"
        w = encode("fadd.d", rd=1, rs1=2, rs2=3)  # dynamic rm default
        assert decode_word(w).fields["rm"] == 0b111

    def test_fcvt_variants_distinguished_by_rs2(self):
        assert decode_word(encode("fcvt.l.d", rd=1, rs1=2)).mnemonic == "fcvt.l.d"
        assert decode_word(encode("fcvt.lu.d", rd=1, rs1=2)).mnemonic == "fcvt.lu.d"
        assert decode_word(encode("fcvt.d.s", rd=1, rs1=2)).mnemonic == "fcvt.d.s"

    def test_fmadd_r4(self):
        ins = decode_word(encode("fmadd.s", rd=1, rs1=2, rs2=3, rs3=4))
        assert ins.fields["rs3"] == 4

    def test_unknown_word_raises(self):
        with pytest.raises(DecodeError):
            decode_word(0xFFFF_FFFF)

    def test_zicond_sample(self):
        assert decode_word(encode("czero.eqz", rd=1, rs1=2, rs2=3)).extension == "zicond"

    def test_decode_from_bytes(self):
        blob = encode("addi", rd=1, rs1=0, imm=5).to_bytes(4, "little")
        assert decode(blob).mnemonic == "addi"

    def test_truncated_raises(self):
        with pytest.raises(DecodeError):
            decode(b"\x13")  # one byte of a 4-byte instruction

    def test_decode_all_linear(self):
        blob = (encode("addi", rd=1, rs1=0, imm=1).to_bytes(4, "little")
                + encode("add", rd=2, rs1=1, rs2=1).to_bytes(4, "little"))
        out = list(decode_all(blob, 0x1000))
        assert [a for a, _ in out] == [0x1000, 0x1004]


class TestSpecTable:
    def test_no_overlapping_encodings(self):
        """Every spec's match word must decode back to that spec
        (catches mask collisions between table rows)."""
        for spec in all_specs():
            found = lookup_word(spec.match)
            assert found is not None, spec.mnemonic
            assert found.mnemonic == spec.mnemonic, (
                f"{spec.mnemonic} match word decodes as {found.mnemonic}")

    def test_table_covers_rv64gc_core(self):
        for mn in ("add", "sub", "mul", "div", "lr.w", "sc.d", "amoswap.d",
                   "fadd.s", "fmadd.d", "fcvt.d.l", "csrrw", "fence",
                   "fence.i", "ecall", "lwu", "sd", "addiw", "sraw"):
            assert by_mnemonic(mn)

    def test_extension_attribution(self):
        assert by_mnemonic("mul").extension == "m"
        assert by_mnemonic("fld").extension == "d"
        assert by_mnemonic("flw").extension == "f"
        assert by_mnemonic("lr.d").extension == "a"
        assert by_mnemonic("fence.i").extension == "zifencei"
        assert by_mnemonic("csrrw").extension == "zicsr"


def _fields_strategy(spec):
    """Build a hypothesis strategy producing valid fields for one spec."""
    reg = st.integers(0, 31)
    parts = {}
    ops = {op if op[0] != "f" else op[1:] for op in spec.operands}
    fmt = spec.fmt
    if "rd" in ops or fmt in ("I", "U", "J", "CSR", "CSRI"):
        parts["rd"] = reg
    if fmt in ("R", "R4", "SHIFT64", "SHIFT32", "AMO", "I", "S", "B", "CSR"):
        parts["rs1"] = reg
    if fmt in ("S", "B") or ("rs2" in ops and fmt in ("R", "R4", "AMO")):
        parts["rs2"] = reg
    if fmt == "R4":
        parts["rs3"] = reg
        parts["rm"] = st.sampled_from([0, 1, 2, 3, 4, 7])
    if fmt == "R" and spec.has_rm:
        parts["rm"] = st.sampled_from([0, 1, 2, 3, 4, 7])
    if fmt == "I":
        parts["imm"] = st.integers(-2048, 2047)
    elif fmt == "S":
        parts["imm"] = st.integers(-2048, 2047)
    elif fmt == "B":
        parts["imm"] = st.integers(-2048, 2047).map(lambda v: v * 2)
    elif fmt == "U":
        parts["imm"] = st.integers(-(1 << 19), (1 << 19) - 1)
    elif fmt == "J":
        parts["imm"] = st.integers(-(1 << 19), (1 << 19) - 1).map(lambda v: v * 2)
    elif fmt == "SHIFT64":
        parts["shamt"] = st.integers(0, 63)
    elif fmt == "SHIFT32":
        parts["shamt"] = st.integers(0, 31)
    elif fmt == "AMO":
        parts["aq"] = st.integers(0, 1)
        parts["rl"] = st.integers(0, 1)
    if fmt == "CSR":
        parts["csr"] = st.integers(0, 4095)
    elif fmt == "CSRI":
        parts["csr"] = st.integers(0, 4095)
        parts["zimm"] = st.integers(0, 31)
    elif fmt == "FENCE" and spec.operands:
        parts["pred"] = st.integers(0, 15)
        parts["succ"] = st.integers(0, 15)
    return st.fixed_dictionaries(parts)


_ALL = sorted(all_specs(), key=lambda s: s.mnemonic)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
@pytest.mark.parametrize("spec", _ALL, ids=lambda s: s.mnemonic)
def test_encode_decode_roundtrip(spec, data):
    """PROPERTY: for every instruction in the table, encode->decode is the
    identity on (mnemonic, fields)."""
    fields = data.draw(_fields_strategy(spec))
    word = encode_fields(spec, dict(fields))
    ins = decode_word(word)
    assert ins.mnemonic == spec.mnemonic
    for k, v in fields.items():
        assert ins.fields.get(k) == v, (k, v, ins.fields)


@settings(max_examples=200, deadline=None)
@given(word=st.integers(0, 0xFFFF_FFFF))
def test_decoder_total_on_32bit_words(word):
    """PROPERTY: the decoder either raises DecodeError or returns an
    instruction that re-encodes to the same word (no silent corruption)."""
    word |= 0b11  # make it a standard-length encoding
    try:
        ins = decode_word(word)
    except DecodeError:
        return
    re = encode_fields(ins.spec, ins.fields)
    # aq/rl and rm fields are round-tripped; everything else must match.
    assert re == word, (hex(word), hex(re), ins.mnemonic)


def test_instruction_bytes_standard():
    ins = make("addi", rd=5, rs1=0, imm=7)
    assert instruction_bytes(ins) == encode("addi", rd=5, rs1=0, imm=7).to_bytes(4, "little")
