"""Debug line-info tests: the .dyninst.lines section (DWARF .debug_line
stand-in; paper: Dyninst uses optional debug data opportunistically)."""

import pytest

from repro.api import open_binary
from repro.elf import read_elf, write_program
from repro.elf.lines import (
    LineTable, build_lines_section, parse_lines_section,
)
from repro.minicc import Options, compile_source, fib_source
from repro.parse import parse_binary
from repro.proccontrol import EventType, Process
from repro.stackwalk import StackWalker
from repro.symtab import Symtab

SRC = """long add1(long x) {
    long y = x + 1;
    return y;
}
long main(void) {
    long r = add1(41);
    print_long(r);
    return 0;
}
"""


class TestLineTable:
    def test_blob_roundtrip(self):
        table = {0x10000: 1, 0x10010: 5, 0x10020: 9}
        assert parse_lines_section(build_lines_section(table)) == table

    def test_line_for_nearest_preceding(self):
        t = LineTable({0x100: 3, 0x110: 7})
        assert t.line_for(0x100) == 3
        assert t.line_for(0x10C) == 3
        assert t.line_for(0x110) == 7
        assert t.line_for(0x200) == 7
        assert t.line_for(0x50) is None

    def test_empty_table(self):
        t = LineTable({})
        assert not t
        assert t.line_for(0x100) is None

    def test_addresses_for_line(self):
        t = LineTable({0x100: 3, 0x110: 3, 0x120: 4})
        assert t.addresses_for_line(3) == [0x100, 0x110]


class TestPipeline:
    def test_minicc_emits_line_markers(self):
        program = compile_source(SRC)
        assert program.line_map
        # statement lines 2, 3 (add1 body) and 6, 7, 8 (main body)
        lines = set(program.line_map.values())
        assert {2, 3, 6, 7, 8} <= lines

    def test_debug_info_off(self):
        program = compile_source(SRC, Options(debug_info=False))
        assert not program.line_map

    def test_elf_roundtrip(self):
        program = compile_source(SRC)
        st = Symtab.from_bytes(write_program(program))
        assert st.lines
        # the marker addresses survive the ELF round trip exactly
        for addr, line in program.line_map.items():
            assert st.lines.exact(addr) == line

    def test_section_present(self):
        elf = read_elf(write_program(compile_source(SRC)))
        assert elf.section(".dyninst.lines") is not None

    def test_line_for_mid_statement_address(self):
        program = compile_source(SRC)
        st = Symtab.from_program(program)
        add1 = next(s for s in st.function_symbols() if s.name == "add1")
        # any address inside add1's body maps to one of its lines
        line = st.line_for(add1.address + add1.size - 4)
        assert line in (2, 3)


class TestConsumers:
    def test_stackwalk_annotates_lines(self):
        program = compile_source(SRC)
        st = Symtab.from_program(program)
        co = parse_binary(st)
        proc = Process.create(st)
        add1 = co.function_by_name("add1")
        # stop at add1's first statement marker (past the prologue)
        target = min(a for a in st.lines._addrs if a >= add1.entry)
        proc.insert_breakpoint(target)
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        text = StackWalker(proc, co).format()
        assert "add1:" in text  # name:line annotation
        assert "main:" in text
        # _start has no debug info: must not inherit main's last line
        assert "_start:" not in text
        assert "_start" in text

    def test_objdump_annotates_lines(self, tmp_path, capsys):
        from repro.tools.objdump import main as objdump_main
        path = tmp_path / "p.elf"
        path.write_bytes(write_program(compile_source(SRC)))
        objdump_main(["-d", str(path)])
        out = capsys.readouterr().out
        assert "; line" in out

    def test_line_breakpoint(self):
        """A debugger can set a breakpoint on a *source line* via the
        line table."""
        program = compile_source(SRC)
        st = Symtab.from_program(program)
        proc = Process.create(st)
        addrs = st.lines.addresses_for_line(3)  # `return y;` in add1
        assert addrs
        for a in addrs:
            proc.insert_breakpoint(a)
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        assert ev.pc in addrs
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED

    def test_rewritten_binary_keeps_lines(self):
        from repro.codegen import IncrementVar
        from repro.patch import PointType
        b = open_binary(compile_source(SRC))
        c = b.allocate_variable("n")
        b.insert(b.points("add1", PointType.FUNC_ENTRY), IncrementVar(c))
        st2 = Symtab.from_bytes(b.rewrite())
        assert st2.lines
