"""Heap intrinsics tests: alloc/peek/poke and pointer-chasing workloads
under the full toolkit."""

import pytest

from repro.api import open_binary
from repro.minicc import (
    Options, SemaError, analyze, compile_source, linked_list_source, parse,
)
from repro.sim import StopReason, run_program
from repro.tools import trace_memory


class TestIntrinsics:
    def test_alloc_returns_distinct_aligned_chunks(self):
        src = """
long main(void) {
    long a = alloc(16);
    long b = alloc(8);
    long c = alloc(24);
    long ok = 1;
    if (a % 16 != 0) { ok = 0; }
    if (b < a + 16) { ok = 0; }
    if (c < b + 8) { ok = 0; }
    return ok;
}
"""
        _, ev = run_program(compile_source(src), max_steps=100_000)
        assert ev.exit_code == 1

    def test_peek_poke_roundtrip(self):
        src = """
long main(void) {
    long p = alloc(32);
    poke(p, 111);
    poke(p + 8, 222);
    poke(p + 16, peek(p) + peek(p + 8));
    return peek(p + 16) % 256;
}
"""
        _, ev = run_program(compile_source(src), max_steps=100_000)
        assert ev.exit_code == 333 % 256

    def test_poke_is_void(self):
        with pytest.raises(SemaError):
            analyze(parse(
                "long main(void) { long x = poke(0, 1); return x; }"))

    def test_peek_in_expression(self):
        src = """
long main(void) {
    long p = alloc(8);
    poke(p, 20);
    return peek(p) * 2 + 2;
}
"""
        _, ev = run_program(compile_source(src), max_steps=100_000)
        assert ev.exit_code == 42


class TestLinkedListWorkload:
    def test_sum_correct(self):
        p = compile_source(linked_list_source(30))
        m, ev = run_program(p, max_steps=2_000_000)
        assert ev.reason is StopReason.EXITED
        assert bytes(m.stdout) == b"465\n"

    def test_instrumented_pointer_chase(self):
        program = compile_source(linked_list_source(25))
        base = open_binary(program)
        m0, _ = base.run_instrumented()

        b = open_binary(program)
        from repro.codegen import IncrementVar
        from repro.patch import PointType
        c = b.allocate_variable("iters")
        for pt in b.points("sum_list", PointType.LOOP_BACKEDGE):
            b.insert(pt, IncrementVar(c))
        m, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert bytes(m.stdout) == bytes(m0.stdout)
        assert m.mem.read_int(c.address, 8) == 25  # one per node

    def test_memtrace_sees_node_chain(self):
        """The memory tracer observes the pointer-chase stride pattern:
        node loads walk the heap backwards (LIFO list)."""
        program = compile_source(linked_list_source(10))
        b = open_binary(program)
        h = trace_memory(b, ["sum_list"], stores=False)
        m, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        heap = b.symtab.symbol("heap_base").address
        events = [e for e in h.read(m)]
        # 10 nodes x 2 loads (value + next) per iteration
        heap_loads = [e for e in events
                      if heap <= e.address < heap + (1 << 16)]
        assert len(heap_loads) == 20
        values = [e.address for e in heap_loads[::2]]
        # strictly descending node addresses (LIFO allocation order)
        assert values == sorted(values, reverse=True)
        assert len(set(values)) == 10
