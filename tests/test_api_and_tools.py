"""Tests for the BPatch-style facade and the tool layer."""

import pytest

from repro.api import ApiError, BinaryEdit, attach, load_rewritten, open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source, compile_to_elf, fib_source, switch_source
from repro.patch import PointType
from repro.sim import Machine, StopReason
from repro.symtab import Symtab
from repro.tools import (
    build_callgraph, count_basic_blocks, count_function_entries,
    count_loop_iterations, cover_functions, trace_functions,
)


@pytest.fixture
def fib_binary():
    return open_binary(compile_source(fib_source(8)))


class TestFacade:
    def test_open_from_program_bytes_symtab(self):
        prog = compile_source(fib_source(5))
        elf = compile_to_elf(fib_source(5))
        for b in (open_binary(prog), open_binary(elf),
                  open_binary(Symtab.from_program(prog))):
            assert b.function("fib")

    def test_open_garbage_rejected(self):
        with pytest.raises(ApiError):
            open_binary(42)  # type: ignore[arg-type]

    def test_isa_surface(self, fib_binary):
        assert fib_binary.isa.supports("c")

    def test_function_lookup_error(self, fib_binary):
        with pytest.raises(ApiError):
            fib_binary.function("nonexistent")

    def test_points_enumeration(self, fib_binary):
        assert fib_binary.points("fib", PointType.FUNC_ENTRY)
        assert fib_binary.points("fib", PointType.FUNC_EXIT)

    def test_insert_after_commit_rejected(self, fib_binary):
        c = fib_binary.allocate_variable("c")
        pts = fib_binary.points("fib", PointType.FUNC_ENTRY)
        fib_binary.insert(pts, IncrementVar(c))
        fib_binary.commit()
        with pytest.raises(ApiError):
            fib_binary.insert(pts, IncrementVar(c))

    def test_run_instrumented(self, fib_binary):
        c = fib_binary.allocate_variable("c")
        fib_binary.insert(
            fib_binary.points("fib", PointType.FUNC_ENTRY),
            IncrementVar(c))
        m, ev = fib_binary.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert fib_binary.read_variable(m, c) == 67

    def test_three_figure1_flows_agree(self):
        """Static rewrite, dynamic-create, dynamic-attach must produce
        identical counter values (Figure 1)."""
        def instrumented_binary():
            b = open_binary(compile_source(fib_source(8)))
            c = b.allocate_variable("c")
            b.insert(b.points("fib", PointType.FUNC_ENTRY),
                     IncrementVar(c))
            return b, c

        # static
        b1, c1 = instrumented_binary()
        m1 = Machine()
        load_rewritten(m1, b1.rewrite())
        assert m1.run(max_steps=5_000_000).reason is StopReason.EXITED
        v_static = m1.mem.read_int(c1.address, 8)

        # dynamic create
        b2, c2 = instrumented_binary()
        proc = b2.create_process()
        proc.continue_to_event()
        v_create = proc.machine.mem.read_int(c2.address, 8)

        # dynamic attach (at entry, before any fib call)
        b3, c3 = instrumented_binary()
        m3 = Machine()
        b3.symtab.load_into(m3)
        proc3 = b3.attach_and_instrument(m3)
        proc3.continue_to_event()
        v_attach = m3.mem.read_int(c3.address, 8)

        assert v_static == v_create == v_attach == 67


class TestCounterTools:
    def test_function_counter(self):
        b = open_binary(compile_source(fib_source(9)))
        h = count_function_entries(b, "fib")
        m, ev = b.run_instrumented()
        assert h.read(m) == 109

    def test_block_counter(self):
        b = open_binary(compile_source(fib_source(7)))
        h = count_basic_blocks(b, "fib")
        assert h.n_points > 1
        m, _ = b.run_instrumented()
        assert h.read(m) > h.n_points

    def test_loop_counter(self):
        src = """
long main(void) {
    long s = 0;
    for (long i = 0; i < 25; i = i + 1) { s = s + i; }
    return 0;
}
"""
        b = open_binary(compile_source(src))
        h = count_loop_iterations(b, "main")
        m, _ = b.run_instrumented()
        assert h.read(m) == 25


class TestTracer:
    def test_entry_exit_trace(self):
        b = open_binary(compile_source("""
long inner(long x) { return x * 2; }
long outer(long x) { return inner(x) + 1; }
long main(void) { return outer(5); }
"""))
        h = trace_functions(b, ["outer", "inner"])
        m, ev = b.run_instrumented()
        events = h.read(m)
        seq = [(e.function, e.kind) for e in events]
        assert seq == [
            ("outer", "entry"), ("inner", "entry"),
            ("inner", "exit"), ("outer", "exit"),
        ]

    def test_recursive_trace_balanced(self):
        b = open_binary(compile_source(fib_source(6)))
        h = trace_functions(b, ["fib"], capacity=4096)
        m, _ = b.run_instrumented()
        events = h.read(m)
        entries = sum(1 for e in events if e.kind == "entry")
        exits = sum(1 for e in events if e.kind == "exit")
        assert entries == exits == 25
        # a trace is balanced like parentheses
        depth = 0
        for e in events:
            depth += 1 if e.kind == "entry" else -1
            assert depth >= 0
        assert depth == 0

    def test_ring_wraps(self):
        b = open_binary(compile_source(fib_source(8)))
        h = trace_functions(b, ["fib"], capacity=16)
        m, _ = b.run_instrumented()
        assert h.event_count(m) == 134  # 67 entries + 67 exits
        assert len(h.read(m)) == 16     # only the tail survives

    def test_bad_capacity(self):
        b = open_binary(compile_source(fib_source(4)))
        with pytest.raises(ValueError):
            trace_functions(b, ["fib"], capacity=100)


class TestCoverage:
    def test_full_coverage_on_exercised_function(self):
        b = open_binary(compile_source(fib_source(6)))
        h = cover_functions(b, ["fib"])
        m, _ = b.run_instrumented()
        hit, total = h.report(m)["fib"]
        assert hit == total  # both base case and recursion exercised

    def test_partial_coverage_detected(self):
        b = open_binary(compile_source(switch_source(3)))  # ops 0..2 only
        h = cover_functions(b, ["dispatch"])
        m, _ = b.run_instrumented()
        hit, total = h.report(m)["dispatch"]
        assert 0 < hit < total
        assert h.uncovered(m, "dispatch")


class TestCallGraph:
    def test_structure(self):
        b = open_binary(compile_source(fib_source(5)))
        g = build_callgraph(b.cfg)
        assert "fib" in g.callees("main")
        assert "fib" in g.callees("fib")  # recursion
        assert "main" in g.callers("fib")
        assert "print_long" in g.reachable_from("main")

    def test_dot_output(self):
        b = open_binary(compile_source(fib_source(5)))
        dot = build_callgraph(b.cfg).to_dot()
        assert dot.startswith("digraph")
        assert '"main" -> "fib"' in dot

    def test_unresolved_flagging(self):
        from repro.parse import parse_binary
        from repro.riscv import assemble
        p = assemble(""".type f, @function\nf:\njr a3\n""")
        co = parse_binary(Symtab.from_program(p))
        g = build_callgraph(co)
        assert "f" in g.has_unresolved
