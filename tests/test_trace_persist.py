"""Persistent compiled-trace cache: warm revival, stale rejection,
and invalidation of revived traces.

The contract (docs/INTERNALS.md "JIT tiers"): a warm run of an
unchanged binary revives every trace from the snapshot and reports
**zero** compile events with an architectural outcome bit-identical to
the cold run; any code page patched since the save rejects exactly the
traces that span it (content-hash mismatch, counted under
``trace.persist.stale``) and demand compilation takes over; revived
traces obey the same page-bucketed write-watch invalidation as
demand-compiled ones.
"""

import json

from repro.minicc import compile_source
from repro.minicc.workloads import matmul_source
from repro.proccontrol import EventType, Process
from repro.riscv import assemble
from repro.riscv.encoder import encode
from repro.sim import (
    Machine, P550, StopReason, TraceStore, X86PROXY,
    image_key, load_traces, save_traces,
)
from repro.telemetry.events import EventStream

MATMUL = compile_source(matmul_source(8, 3))

#: self-patching loop mutatee: the store at i==3 rewrites the hot body
SELF_PATCH = f"""
_start:
  li a0, 0
  li t2, 0
  la t0, target
  li t1, {encode('addi', rd=10, rs1=10, imm=10):#x}
loop:
target:
  addi a0, a0, 1
  addi t2, t2, 1
  li t4, 3
  bne t2, t4, skip
  sw t1, 0(t0)
skip:
  li t3, 6
  blt t2, t3, loop
  li a7, 93
  ecall
"""

#: plain counted loop (no self-modification): its save-time page
#: hashes match a fresh load of the same image
LOOP = """
_start:
  li a0, 0
  li t0, 0
loop:
  addi t0, t0, 1
body:
  addi a0, a0, 1
  li t4, 8
  blt t0, t4, loop
  li a7, 93
  ecall
"""


def _cold_run(prog, **kw):
    m = Machine(P550, trace_compile=True, megatraces=True, **kw)
    m.load_program(prog)
    ev = m.run()
    return m, ev


def _state(m):
    return (m.pc, list(m.x), list(m.f), m.instret, m.ucycles,
            bytes(m.stdout))


class TestWarmRevival:
    def test_warm_run_zero_compiles_identical_state(self):
        cold, ev0 = _cold_run(MATMUL)
        assert cold.traces.mega_compiles > 0
        snap = json.loads(json.dumps(save_traces(cold)))  # JSON trip

        warm = Machine(P550, trace_compile=True, megatraces=True)
        warm.load_program(MATMUL)
        n = load_traces(warm, snap)
        assert n == len(snap["traces"]) > 0
        assert warm.traces.persist_loads == n
        ev1 = warm.run()

        # zero compile events: every executed trace was revived
        assert warm.traces.compiles == 0
        assert warm.traces.mega_compiles == 0
        assert warm.traces.persist_stale == 0
        assert ev1.reason is ev0.reason is StopReason.EXITED
        assert _state(warm) == _state(cold)

    def test_store_roundtrip_on_disk(self, tmp_path):
        cold, _ = _cold_run(MATMUL)
        store = TraceStore(tmp_path)
        path = store.save(cold)
        assert path.name == f"traces-{image_key(cold)}.json"

        warm = Machine(P550, trace_compile=True, megatraces=True)
        warm.load_program(MATMUL)
        assert store.load(warm) == len(
            json.loads(path.read_text())["traces"])
        warm.run()
        assert warm.traces.compiles == warm.traces.mega_compiles == 0
        assert _state(warm) == _state(cold)

    def test_corrupt_store_is_a_miss(self, tmp_path):
        cold, _ = _cold_run(MATMUL)
        store = TraceStore(tmp_path)
        store.save(cold).write_text("{not json")
        warm = Machine(P550, trace_compile=True, megatraces=True)
        warm.load_program(MATMUL)
        assert store.load(warm) == 0

    def test_timing_model_mismatch_misses(self):
        cold, _ = _cold_run(MATMUL)
        snap = save_traces(cold)
        other = Machine(X86PROXY, trace_compile=True, megatraces=True)
        other.load_program(MATMUL)
        assert load_traces(other, snap) == 0
        assert other.traces.persist_stale == len(snap["traces"])

    def test_block_observer_refuses_snapshot(self):
        """Persisted traces carry no compiled-in event emits, so a
        block-granularity observer forces demand compilation."""
        cold, _ = _cold_run(MATMUL)
        snap = save_traces(cold)
        m = Machine(P550, trace_compile=True, megatraces=True)
        m.load_program(MATMUL)
        m.attach_observer(EventStream(granularity="block"))
        assert load_traces(m, snap) == 0


class TestStaleRejection:
    def test_patched_page_rejects_and_recompiles(self):
        """Rewrite one instruction between save and load: every trace
        on the patched page must be rejected by the hash check, demand
        compilation must take over, and the outcome must be
        bit-identical to a cold run of the patched image."""
        prog = assemble(SELF_PATCH)
        cold, _ = _cold_run(prog)
        snap = save_traces(cold)
        total = len(snap["traces"])
        assert total > 0

        patch = encode("addi", rd=10, rs1=10, imm=2).to_bytes(
            4, "little")
        target = prog.symbol("target").address

        warm = Machine(P550, trace_compile=True, megatraces=True)
        warm.load_program(prog)
        warm.mem.write_bytes(target, patch)
        assert load_traces(warm, snap) == 0  # one code page: all stale
        assert warm.traces.persist_stale == total
        ev = warm.run()
        assert warm.traces.compiles > 0  # demand compilation took over

        ref = Machine(P550, trace_compile=True, megatraces=True)
        ref.load_program(prog)
        ref.mem.write_bytes(target, patch)
        ev_ref = ref.run()
        assert ev.exit_code == ev_ref.exit_code == 3 * 2 + 3 * 10
        assert _state(warm) == _state(ref)

    def test_revived_traces_obey_write_watch(self):
        """A code write (here: breakpoint insertion) must invalidate
        *revived* traces exactly like demand-compiled ones — the
        breakpoint has to fire, not be run over by a stale trace."""
        prog = assemble(LOOP)
        cold, ev0 = _cold_run(prog)
        assert ev0.exit_code == 8
        snap = save_traces(cold)

        warm = Machine(P550, trace_compile=True, megatraces=True)
        warm.load_program(prog)
        assert load_traces(warm, snap) > 0
        proc = Process.attach(warm)
        body = prog.symbol("body").address
        proc.insert_breakpoint(body)
        assert warm.traces.invalidations > 0
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        assert ev.pc == body
        assert warm.x[5] == 1  # stopped in the first iteration
        proc.remove_breakpoint(body)
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        assert ev.exit_code == 8

    def test_image_key_tracks_code_and_timing(self):
        m1, _ = _cold_run(MATMUL)
        m2 = Machine(P550)
        m2.load_program(MATMUL)
        assert image_key(m1) == image_key(m2)
        m3 = Machine(X86PROXY)
        m3.load_program(MATMUL)
        assert image_key(m3) != image_key(m1)
        prog2 = assemble(SELF_PATCH)
        m4 = Machine(P550)
        m4.load_program(prog2)
        assert image_key(m4) != image_key(m1)
