"""Instruction deletion/modification tests — the remaining verbs of §1
("inserting, deleting or modifying instructions")."""

import pytest

from repro.api import open_binary
from repro.codegen import Const, RegExpr, SetReg, BinExpr
from repro.minicc import compile_source
from repro.patch import instruction_point
from repro.riscv import assemble, lookup
from repro.sim import Machine, StopReason
from repro.symtab import Symtab


def build(src):
    p = assemble(src)
    st = Symtab.from_program(p)
    return open_binary(st), p


CHAIN = """
.globl _start
_start:
  li a0, 0
  addi a0, a0, 1
  addi a0, a0, 10
  addi a0, a0, 100
  li a7, 93
  ecall
"""


class TestDeletion:
    def test_delete_middle_instruction(self):
        b, p = build(CHAIN)
        fn = b.cfg.function_containing(p.entry)
        # delete `addi a0, a0, 10` (the third instruction)
        b.delete_instruction(instruction_point(fn, p.entry + 8))
        m, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == 101  # 1 + 100, the 10 never happened

    def test_delete_first_of_slot_keeps_second(self):
        # two compressed instructions share the 4-byte slot: deleting
        # the first must still execute the second
        src = """
.globl _start
_start:
  li a0, 0
  c.addi a0, 2
  c.addi a0, 5
  li a7, 93
  ecall
"""
        b, p = build(src)
        fn = b.cfg.function_containing(p.entry)
        b.delete_instruction(instruction_point(fn, p.entry + 4))
        m, ev = b.run_instrumented()
        assert ev.exit_code == 5

    def test_modify_instruction(self):
        """delete + insert at the same point = modification: turn
        `addi a0, a0, 10` into `a0 = a0 * 3`."""
        b, p = build(CHAIN)
        fn = b.cfg.function_containing(p.entry)
        pt = instruction_point(fn, p.entry + 8)
        b.delete_instruction(pt)
        b.insert(pt, SetReg(lookup("a0"),
                            BinExpr("mul", RegExpr(lookup("a0")),
                                    Const(3))))
        m, ev = b.run_instrumented()
        assert ev.exit_code == 103  # (0+1)*3 + 100

    def test_delete_conditional_branch_forces_fallthrough(self):
        src = """
.globl _start
_start:
  li a0, 5
  beqz a0, skip       # not taken normally; delete -> still fallthrough
  addi a0, a0, 1
skip:
  li a7, 93
  ecall
"""
        b, p = build(src)
        fn = b.cfg.function_containing(p.entry)
        b.delete_instruction(instruction_point(fn, p.entry + 4))
        m, ev = b.run_instrumented()
        assert ev.exit_code == 6

    def test_delete_in_minicc_program(self):
        program = compile_source("""
long main(void) {
    long x = 7;
    x = x + 1000;
    return x % 256;
}
""")
        b = open_binary(program)
        main = b.function("main")
        # find the instruction materialising 1000 (lui is not used for
        # 1000; it is an addi chain) — locate the add of the two temps
        target = next(
            i for i in main.instructions()
            if i.mnemonic == "add" and i.raw.fields.get("rs2", 0) != 0)
        b.delete_instruction(instruction_point(main, target.address))
        m, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code != (7 + 1000) % 256  # behaviour changed
