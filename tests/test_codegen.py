"""CodeGenAPI tests: snippet lowering correctness (executed on the
simulator), extension awareness, register allocation."""

import pytest

from repro.codegen import (
    AllocationError, BinExpr, CallFunc, Const, DataArea,
    ExtensionUnavailable, If, IncrementVar, LoadExpr, Nop, NotExpr,
    RegExpr, Sequence, SetReg, SetVar, SnippetError, SnippetGenerator,
    SpillArea, StoreSnippet, VarExpr, allocate_scratch, snippet_calls,
)
from repro.dataflow import analyze_liveness
from repro.minicc import compile_source, matmul_source
from repro.parse import parse_binary
from repro.riscv import RV64GC, RV64I, lookup, xreg
from repro.riscv.extensions import ISASubset
from repro.sim import Machine
from repro.symtab import Symtab

DATA_BASE = 0x40_0000
CODE_BASE = 0x30_0000
SCRATCH = [lookup("t0"), lookup("t1"), lookup("t2"), lookup("t3")]


def run_payload(snippet, isa=RV64GC, scratch=None, presets=None,
                data_size=0x1000):
    """Lower a snippet, execute it on a bare machine, return (machine,
    data area)."""
    area = DataArea(DATA_BASE, data_size)
    # pre-allocate caller-declared variables
    gen = SnippetGenerator(isa, scratch or SCRATCH)
    code = gen.generate(snippet)
    blob = code.encode()

    m = Machine()
    m.mem.map_region(CODE_BASE, max(len(blob) + 8, 0x1000))
    m.mem.map_region(DATA_BASE, data_size)
    m.mem.write_bytes(CODE_BASE, blob + b"\x00\x00\x00\x00")
    # terminate with ebreak
    from repro.riscv import encode
    m.mem.write_bytes(CODE_BASE + len(blob),
                      encode("ebreak").to_bytes(4, "little"))
    m.pc = CODE_BASE
    for reg, val in (presets or {}).items():
        m.set_reg(lookup(reg).number, val)
    ev = m.run(max_steps=10_000)
    assert ev.reason.value == "breakpoint", ev
    return m, area


def var_at(name="v", addr=DATA_BASE):
    from repro.codegen import Variable

    return Variable(name, addr)


class TestDataArea:
    def test_allocation_and_alignment(self):
        area = DataArea(0x1000, 64)
        a = area.allocate("a", size=1)
        b = area.allocate("b", size=8)
        assert a.address == 0x1000
        assert b.address == 0x1008  # aligned past the 1-byte var
        assert area.used == 16

    def test_exhaustion(self):
        area = DataArea(0x1000, 16)
        area.allocate("a")
        area.allocate("b")
        with pytest.raises(SnippetError):
            area.allocate("c")

    def test_duplicate_name(self):
        area = DataArea(0x1000, 64)
        area.allocate("x")
        with pytest.raises(SnippetError):
            area.allocate("x")


class TestLoweringExecution:
    def test_increment_variable(self):
        v = var_at()
        m, _ = run_payload(IncrementVar(v))
        assert m.mem.read_int(v.address, 8) == 1

    def test_increment_by_large_step(self):
        v = var_at()
        m, _ = run_payload(IncrementVar(v, step=1 << 40))
        assert m.mem.read_int(v.address, 8) == 1 << 40

    def test_set_var_constant(self):
        v = var_at()
        m, _ = run_payload(SetVar(v, Const(0xDEADBEEF)))
        assert m.mem.read_int(v.address, 8) == 0xDEADBEEF

    def test_read_register(self):
        v = var_at()
        m, _ = run_payload(SetVar(v, RegExpr(lookup("a0"))),
                           presets={"a0": 777})
        assert m.mem.read_int(v.address, 8) == 777

    def test_set_register(self):
        m, _ = run_payload(SetReg(lookup("a5"), Const(31337)))
        assert m.get_reg(15) == 31337

    def test_arithmetic_tree(self):
        v = var_at()
        expr = BinExpr("add", BinExpr("mul", Const(6), Const(7)),
                       BinExpr("sub", Const(100), Const(58)))
        m, _ = run_payload(SetVar(v, expr))
        assert m.mem.read_int(v.address, 8) == 42 + 42

    def test_comparisons(self):
        v = var_at()
        expr = BinExpr("add",
                       BinExpr("lt", Const(3), Const(5)),       # 1
                       BinExpr("add",
                               BinExpr("ge", Const(5), Const(5)),  # 1
                               BinExpr("eq", Const(4), Const(9))))  # 0
        m, _ = run_payload(SetVar(v, expr))
        assert m.mem.read_int(v.address, 8) == 2

    def test_not_expr(self):
        v = var_at()
        m, _ = run_payload(SetVar(v, NotExpr(Const(0))))
        assert m.mem.read_int(v.address, 8) == 1

    def test_if_then(self):
        v = var_at()
        snip = If(BinExpr("gt", RegExpr(lookup("a0")), Const(10)),
                  SetVar(v, Const(1)))
        m, _ = run_payload(snip, presets={"a0": 50})
        assert m.mem.read_int(v.address, 8) == 1
        m, _ = run_payload(snip, presets={"a0": 5})
        assert m.mem.read_int(v.address, 8) == 0

    def test_if_else(self):
        v = var_at()
        snip = If(RegExpr(lookup("a0")),
                  SetVar(v, Const(111)),
                  SetVar(v, Const(222)))
        m, _ = run_payload(snip, presets={"a0": 0})
        assert m.mem.read_int(v.address, 8) == 222

    def test_sequence(self):
        v1, v2 = var_at("a", DATA_BASE), var_at("b", DATA_BASE + 8)
        snip = Sequence([SetVar(v1, Const(5)),
                         SetVar(v2, BinExpr("mul", VarExpr(v1), Const(3))),
                         IncrementVar(v1)])
        m, _ = run_payload(snip)
        assert m.mem.read_int(v1.address, 8) == 6
        assert m.mem.read_int(v2.address, 8) == 15

    def test_load_store_through_address(self):
        snip = Sequence([
            StoreSnippet(Const(DATA_BASE + 64), Const(0x55), size=1),
            SetVar(var_at(),
                   LoadExpr(Const(DATA_BASE + 64), size=1)),
        ])
        m, _ = run_payload(snip)
        assert m.mem.read_int(DATA_BASE, 8) == 0x55

    def test_nop_generates_nothing(self):
        gen = SnippetGenerator(RV64GC, SCRATCH)
        assert gen.generate(Nop()).size == 0

    def test_call_func(self):
        # target function: a0 = a0 + 1000; ret
        from repro.riscv import encode
        fn_addr = CODE_BASE + 0x800
        snip = Sequence([
            CallFunc(fn_addr, [Const(7)]),
            SetVar(var_at(), RegExpr(lookup("a0"))),
        ])
        area = DataArea(DATA_BASE, 64)
        gen = SnippetGenerator(RV64GC, SCRATCH)
        blob = gen.generate(snip).encode()
        m = Machine()
        m.mem.map_region(CODE_BASE, 0x1000)
        m.mem.map_region(DATA_BASE, 0x100)
        m.mem.write_bytes(CODE_BASE, blob)
        m.mem.write_bytes(CODE_BASE + len(blob),
                          encode("ebreak").to_bytes(4, "little"))
        m.mem.write_bytes(fn_addr,
                          encode("addi", rd=10, rs1=10, imm=1000).to_bytes(4, "little")
                          + encode("jalr", rd=0, rs1=1, imm=0).to_bytes(4, "little"))
        m.pc = CODE_BASE
        m.set_reg(2, 0x7FFE0000)
        m.mem.map_region(0x7FFD0000, 0x20000)
        ev = m.run(max_steps=1000)
        assert ev.reason.value == "breakpoint"
        assert m.mem.read_int(DATA_BASE, 8) == 1007

    def test_snippet_calls_detector(self):
        assert snippet_calls(CallFunc(0x1000))
        assert snippet_calls(Sequence([Nop(), CallFunc(0x1000)]))
        assert snippet_calls(If(Const(1), CallFunc(0x1000)))
        assert not snippet_calls(IncrementVar(var_at()))


class TestExtensionAwareness:
    def test_mul_rejected_on_rv64i(self):
        """Paper §3.1.1: never generate instructions the mutatee's
        processor may lack."""
        gen = SnippetGenerator(RV64I, SCRATCH)
        with pytest.raises(ExtensionUnavailable) as ei:
            gen.generate(SetVar(var_at(),
                                BinExpr("mul", RegExpr(lookup("a0")),
                                        Const(3))))
        assert ei.value.extension == "m"

    def test_add_fine_on_rv64i(self):
        gen = SnippetGenerator(RV64I, SCRATCH)
        code = gen.generate(SetVar(var_at(),
                                   BinExpr("add", Const(2), Const(3))))
        assert code.size > 0

    def test_div_requires_m(self):
        isa = ISASubset(64, frozenset({"i"}))
        gen = SnippetGenerator(isa, SCRATCH)
        with pytest.raises(ExtensionUnavailable):
            # non-constant operand so the division cannot fold away
            gen.generate(SetVar(var_at(),
                                BinExpr("div", RegExpr(lookup("a0")),
                                        Const(3))))


class TestScratchLimits:
    def test_too_few_scratch_rejected(self):
        with pytest.raises(SnippetError):
            SnippetGenerator(RV64GC, [lookup("t0")])

    def test_deep_expression_overflows(self):
        # register leaves cannot constant-fold, so depth is preserved
        expr = RegExpr(lookup("a0"))
        for _ in range(8):
            expr = BinExpr("add", expr,
                           BinExpr("add", expr, RegExpr(lookup("a1"))))
        gen = SnippetGenerator(RV64GC, SCRATCH[:2])
        with pytest.raises(SnippetError):
            gen.generate(SetVar(var_at(), expr))


class TestRegisterAllocation:
    def _liveness_at_entry(self, name="multiply"):
        co = parse_binary(Symtab.from_program(
            compile_source(matmul_source(4, 1))))
        fn = co.function_by_name(name)
        return analyze_liveness(fn), fn.entry

    def test_dead_registers_preferred(self):
        lv, point = self._liveness_at_entry()
        plan = allocate_scratch(2, lv, point)
        assert plan.n_dead == 2
        assert plan.spilled == ()
        assert plan.spill_bytes == 0

    def test_optimization_off_spills_everything(self):
        """The legacy (pre-optimisation x86) behaviour of §4.3."""
        lv, point = self._liveness_at_entry()
        plan = allocate_scratch(2, lv, point, use_dead_registers=False)
        assert plan.n_dead == 0
        assert len(plan.spilled) == 2
        assert plan.spill_bytes == 16

    def test_no_liveness_spills(self):
        plan = allocate_scratch(3)
        assert len(plan.spilled) == 3

    def test_requesting_too_many(self):
        with pytest.raises(AllocationError):
            allocate_scratch(100)

    def test_spill_area_instructions_roundtrip(self):
        plan = allocate_scratch(2, use_dead_registers=False)
        area = SpillArea(plan, extra=(lookup("ra"),))
        saves = area.save_instructions()
        restores = area.restore_instructions()
        assert saves[0] == ("addi", {"rd": 2, "rs1": 2,
                                     "imm": -area.frame_bytes})
        assert restores[-1] == ("addi", {"rd": 2, "rs1": 2,
                                         "imm": area.frame_bytes})
        assert area.frame_bytes % 16 == 0
        saved = {mn for mn, _ in saves}
        assert "sd" in saved

    def test_empty_spill_area(self):
        plan = allocate_scratch(1, use_dead_registers=False)
        # force a no-spill plan by faking liveness-free dead regs
        from repro.codegen.regalloc import ScratchPlan
        empty = SpillArea(ScratchPlan((xreg(5),), ()))
        assert empty.save_instructions() == []
        assert empty.frame_bytes == 0
