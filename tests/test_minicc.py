"""MiniC compiler tests: lexer, parser, sema, codegen correctness
(checked by executing compiled programs on the simulator)."""

import pytest

from repro.minicc import (
    CompileError, LexError, Options, ParseError, SemaError, analyze,
    compile_source, compile_to_asm, fib_source, matmul_source, parse,
    switch_source, tailcall_source,
)
from repro.sim import StopReason, run_program


def run_c(src, opts=None, max_steps=5_000_000):
    p = compile_source(src, opts=opts)
    m, ev = run_program(p, max_steps=max_steps)
    assert ev.reason is StopReason.EXITED, ev
    return ev.exit_code, bytes(m.stdout).decode()


class TestLexerParser:
    def test_bad_character_rejected(self):
        with pytest.raises(LexError):
            parse("long main(void) { return `; }")

    def test_unbalanced_braces_rejected(self):
        with pytest.raises(ParseError):
            parse("long main(void) { return 0;")

    def test_comments(self):
        code, _ = run_c("""
// line comment
long main(void) { /* block
comment */ return 5; }
""")
        assert code == 5

    def test_operator_precedence(self):
        code, _ = run_c("long main(void) { return 2 + 3 * 4; }")
        assert code == 14

    def test_parentheses(self):
        code, _ = run_c("long main(void) { return (2 + 3) * 4; }")
        assert code == 20

    def test_unary_minus_and_not(self):
        code, _ = run_c(
            "long main(void) { return -(-7) + !0 + !42; }")
        assert code == 8


class TestSema:
    def test_undefined_variable(self):
        with pytest.raises(SemaError):
            analyze(parse("long main(void) { return nope; }"))

    def test_undefined_function(self):
        with pytest.raises(SemaError):
            analyze(parse("long main(void) { return f(); }"))

    def test_missing_main(self):
        with pytest.raises(SemaError):
            analyze(parse("long f(void) { return 0; }"))

    def test_arity_mismatch(self):
        with pytest.raises(SemaError):
            analyze(parse("""
long f(long a) { return a; }
long main(void) { return f(1, 2); }
"""))

    def test_break_outside_loop(self):
        with pytest.raises(SemaError):
            analyze(parse("long main(void) { break; return 0; }"))

    def test_array_index_count(self):
        with pytest.raises(SemaError):
            analyze(parse("""
double m[4][4];
long main(void) { m[1] = 0.0; return 0; }
"""))

    def test_prototype_then_definition(self):
        analyze(parse("""
long f(long x);
long f(long x) { return x; }
long main(void) { return f(1); }
"""))

    def test_prototype_without_definition_rejected(self):
        with pytest.raises(SemaError):
            analyze(parse("""
long f(long x);
long main(void) { return f(1); }
"""))

    def test_conflicting_prototype_rejected(self):
        with pytest.raises(SemaError):
            analyze(parse("""
long f(long x);
double f(long x) { return 0.0; }
long main(void) { return 0; }
"""))


class TestCodegenCorrectness:
    def test_locals_and_assignment(self):
        code, _ = run_c("""
long main(void) {
    long a = 10;
    long b = a * 3;
    a = b - 5;
    return a;
}
""")
        assert code == 25

    def test_if_else_chains(self):
        code, _ = run_c("""
long classify(long x) {
    if (x < 0) { return 1; }
    else if (x == 0) { return 2; }
    else { return 3; }
}
long main(void) {
    return classify(-5) * 100 + classify(0) * 10 + classify(9);
}
""")
        assert code == 123

    def test_while_and_for(self):
        code, _ = run_c("""
long main(void) {
    long s = 0;
    for (long i = 1; i <= 10; i = i + 1) { s = s + i; }
    long t = 0;
    long j = 10;
    while (j > 0) { t = t + j; j = j - 1; }
    return s == t && s == 55;
}
""")
        assert code == 1

    def test_break_continue(self):
        code, _ = run_c("""
long main(void) {
    long s = 0;
    for (long i = 0; i < 100; i = i + 1) {
        if (i % 2 == 0) { continue; }
        if (i > 10) { break; }
        s = s + i;     // 1+3+5+7+9 = 25
    }
    return s;
}
""")
        assert code == 25

    def test_logical_short_circuit(self):
        # g() must not run when the left side of && is false.
        code, out = run_c("""
long g(void) { print_long(99); return 1; }
long main(void) {
    long a = 0 && g();
    long b = 1 || g();
    return a * 10 + b;
}
""")
        assert code == 1
        assert "99" not in out

    def test_division_and_modulo_signs(self):
        code, _ = run_c("""
long main(void) {
    return (-7 / 2 == -3) + (-7 % 2 == -1) + (7 / -2 == -3) * 4;
}
""")
        assert code == 6  # C truncation semantics: 1 + 1 + 4

    def test_double_arithmetic(self):
        code, _ = run_c("""
long main(void) {
    double x = 1.5;
    double y = x * 4.0 - 2.0;       // 4.0
    return (long)y;
}
""")
        assert code == 4

    def test_mixed_promotion(self):
        code, _ = run_c("""
long main(void) {
    long i = 3;
    double d = i / 2.0;      // 1.5
    return (long)(d * 10.0); // 15
}
""")
        assert code == 15

    def test_cast_truncates_toward_zero(self):
        code, _ = run_c("""
long main(void) {
    double d = 0.0 - 2.7;
    long a = (long)d;        // -2, not -3
    double e = 2.7;
    long b = (long)e;        // 2
    return (a == 0 - 2) * 10 + (b == 2);
}
""")
        assert code == 11

    def test_global_scalars_and_arrays(self):
        code, _ = run_c("""
long counter = 5;
double weights[3] = { 0.5, 1.5, 2.5 };
long main(void) {
    counter = counter + 1;
    double s = weights[0] + weights[1] + weights[2];
    return counter * 10 + (long)s;   // 60 + 4
}
""")
        assert code == 64

    def test_2d_array_indexing(self):
        code, _ = run_c("""
long grid[4][5];
long main(void) {
    for (long i = 0; i < 4; i = i + 1) {
        for (long j = 0; j < 5; j = j + 1) {
            grid[i][j] = i * 10 + j;
        }
    }
    return grid[3][4];
}
""")
        assert code == 34

    def test_uninitialized_global_array_is_zero(self):
        code, _ = run_c("""
long buf[100];
long main(void) { return buf[42]; }
""")
        assert code == 0

    def test_recursion(self):
        code, out = run_c(fib_source(12))
        assert out.startswith("144\n")

    def test_nested_calls_preserve_temps(self):
        code, _ = run_c("""
long f(long x) { return x * 2; }
long main(void) {
    // f(3) evaluated while 100+... is in-flight: temps must survive
    return 100 + f(3) + f(f(1)) * 10;
}
""")
        assert code == 100 + 6 + 40

    def test_double_args_and_return(self):
        code, _ = run_c("""
double scale(double x, double factor) { return x * factor; }
long main(void) {
    double r = scale(3.0, 2.5);
    return (long)r;
}
""")
        assert code == 7

    def test_mixed_args(self):
        code, _ = run_c("""
double mix(long i, double d, long j) { return (double)(i + j) * d; }
long main(void) { return (long)mix(2, 1.5, 4); }
""")
        assert code == 9

    def test_switch_dense_jump_table(self):
        asm = compile_to_asm(switch_source())
        # dense switch must compile to an indirect jump through a table
        assert "jr" in asm and ".dword .L" in asm
        code, out = run_c(switch_source(20))
        assert out == "95\n"

    def test_switch_sparse_compare_chain(self):
        src = """
long f(long x) {
    switch (x) {
        case 1: return 10;
        case 100: return 20;
        case 1000: return 30;
        default: return 0;
    }
}
long main(void) { return f(100) + f(1) + f(7); }
"""
        asm = compile_to_asm(src)
        assert "jr" not in asm.split("print_long")[0].split("_start")[0] or True
        code, _ = run_c(src)
        assert code == 30

    def test_switch_fallthrough(self):
        code, _ = run_c("""
long main(void) {
    long r = 0;
    switch (2) {
        case 1: r = r + 1;
        case 2: r = r + 10;
        case 3: r = r + 100;  // falls through from 2
                break;
        case 4: r = r + 1000;
    }
    return r;
}
""")
        assert code == 110

    def test_switch_default_hit(self):
        code, _ = run_c(
            "long main(void) { switch (9) { case 1: return 1; "
            "default: return 42; } return 0; }")
        assert code == 42

    def test_tail_calls_emitted(self):
        asm = compile_to_asm(tailcall_source(), Options(tail_calls=True))
        assert "tail " in asm
        code, out = run_c(tailcall_source(75), Options(tail_calls=True))
        assert out == "75\n"

    def test_frame_pointer_mode(self):
        opts = Options(use_frame_pointer=True)
        asm = compile_to_asm(fib_source(10), opts)
        # standard GCC RISC-V fp frame: ra at size-8, s0 at size-16,
        # s0 = entry sp
        assert "addi s0, sp," in asm
        assert "sd s0," in asm
        code, out = run_c(fib_source(10), opts)
        assert out.startswith("55\n")

    def test_compressed_mode(self):
        opts = Options(compress=True)
        asm = compile_to_asm("long main(void) { long a = 5; return a; }",
                             opts)
        assert "c.li" in asm or "c.mv" in asm
        code, _ = run_c("long main(void) { long a = 5; return a; }", opts)
        assert code == 5

    def test_void_function(self):
        code, out = run_c("""
long total = 0;
void bump(long k) { total = total + k; }
long main(void) {
    bump(3);
    bump(4);
    return total;
}
""")
        assert code == 7

    def test_expression_too_deep_reported(self):
        deep = "1"
        for _ in range(10):
            deep = f"({deep} + f({deep}))"
        src = f"""
long f(long x) {{ return x; }}
long main(void) {{ return {deep}; }}
"""
        with pytest.raises(CompileError):
            compile_to_asm(src)


class TestBuiltins:
    def test_print_long_negative(self):
        _, out = run_c(
            "long main(void) { print_long(-123); print_long(0); return 0; }")
        assert out == "-123\n0\n"

    def test_print_char(self):
        _, out = run_c("""
long main(void) {
    print_char(72); print_char(105); print_char(10);
    return 0;
}
""")
        assert out == "Hi\n"

    def test_clock_ns_monotonic(self):
        code, out = run_c("""
long main(void) {
    long t0 = clock_ns();
    for (long i = 0; i < 1000; i = i + 1) { }
    long t1 = clock_ns();
    return t1 > t0;
}
""")
        assert code == 1

    def test_exit_builtin(self):
        code, _ = run_c("long main(void) { exit(9); return 1; }")
        assert code == 9


class TestMatmulWorkload:
    def test_matmul_checksum_stable(self):
        p = compile_source(matmul_source(8, 2))
        m, ev = run_program(p, max_steps=5_000_000)
        assert ev.reason is StopReason.EXITED
        lines = bytes(m.stdout).decode().strip().split("\n")
        assert len(lines) == 2
        elapsed, chk = int(lines[0]), int(lines[1])
        assert elapsed > 0
        # c[1][2] = sum_k a[1][k]*b[k][2] with the workload's init formula
        n = 8
        expect = sum((1 + k) / 7.0 * ((k - 2) * 0.5) for k in range(n))
        assert chk == int(expect * 1000)

    def test_matmul_deterministic_timing(self):
        p = compile_source(matmul_source(6, 2))
        m1, _ = run_program(p, max_steps=5_000_000)
        m2, _ = run_program(p, max_steps=5_000_000)
        assert m1.ucycles == m2.ucycles
        assert bytes(m1.stdout) == bytes(m2.stdout)
