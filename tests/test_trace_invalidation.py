"""Patch-safe invalidation of compiled code (closures *and* traces).

Dynamic instrumentation rewrites code while it runs.  These tests patch
code mid-run through every channel — self-modifying stores, the
ProcControl debug port, breakpoint insertion, runtime instrumentation —
and check the subsequent execution observes the new code, with the
superblock trace compiler enabled and disabled.  Both modes must also
agree on the full architectural outcome (registers, counters, stdout).
"""

import pytest

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source, fib_source
from repro.patch import PointType
from repro.proccontrol import EventType, Process
from repro.riscv import assemble
from repro.riscv.encoder import encode
from repro.sim import Machine, P550, StopReason

MODES = [pytest.param(True, id="traced"),
         pytest.param(False, id="interp")]

#: encoding of ``addi a0, a0, <imm>`` — the replacement instructions the
#: tests patch in over an original ``addi a0, a0, 1``
def _addi_a0(imm: int) -> int:
    return encode("addi", rd=10, rs1=10, imm=imm)


def _machine(prog, trace_compile):
    m = Machine(P550, trace_compile=trace_compile)
    m.load_program(prog)
    return m


class TestSelfModifyingStores:
    @pytest.mark.parametrize("trace_compile", MODES)
    def test_store_patches_upcoming_instruction(self, trace_compile):
        """A store rewrites an instruction *later in the same
        straight-line run*; the new instruction must execute (the trace
        containing both was compiled from the old bytes)."""
        src = f"""
_start:
  la t0, target
  li t1, {_addi_a0(100):#x}
  li a0, 0
  sw t1, 0(t0)
target:
  addi a0, a0, 1
  li a7, 93
  ecall
"""
        m = _machine(assemble(src), trace_compile)
        ev = m.run()
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == 100  # not 1: the patched addi ran

    @pytest.mark.parametrize("trace_compile", MODES)
    def test_store_patches_hot_loop_body(self, trace_compile):
        """Code already executed (and trace-compiled) is rewritten by a
        later iteration's store; following iterations run the new
        body."""
        src = f"""
_start:
  li a0, 0
  li t2, 0
  la t0, target
  li t1, {_addi_a0(10):#x}
loop:
target:
  addi a0, a0, 1
  addi t2, t2, 1
  li t4, 3
  bne t2, t4, skip
  sw t1, 0(t0)
skip:
  li t3, 6
  blt t2, t3, loop
  li a7, 93
  ecall
"""
        m = _machine(assemble(src), trace_compile)
        ev = m.run()
        assert ev.reason is StopReason.EXITED
        # iterations 1-3 add 1 each, the store fires at i==3,
        # iterations 4-6 add 10 each
        assert ev.exit_code == 3 + 30

    def test_modes_agree_on_counts(self):
        """Self-modifying run: identical instret/ucycles traced vs not."""
        src = f"""
_start:
  li a0, 0
  li t2, 0
  la t0, target
  li t1, {_addi_a0(7):#x}
loop:
target:
  addi a0, a0, 1
  addi t2, t2, 1
  li t4, 2
  bne t2, t4, skip
  sw t1, 0(t0)
skip:
  li t3, 5
  blt t2, t3, loop
  li a7, 93
  ecall
"""
        prog = assemble(src)
        runs = []
        for tc in (True, False):
            m = _machine(prog, tc)
            ev = m.run()
            runs.append((ev.exit_code, m.instret, m.ucycles, m.x, m.pc))
        assert runs[0] == runs[1]


class TestDebugPortPatching:
    @pytest.mark.parametrize("trace_compile", MODES)
    def test_patch_at_breakpoint_mid_run(self, trace_compile):
        """Stop a hot loop at a breakpoint, rewrite an instruction the
        loop (and its compiled traces) already executed, continue: the
        remaining iterations must run the new code."""
        src = """
_start:
  li a0, 0
  li t0, 0
loop:
  addi t0, t0, 1
patch_me:
  addi a0, a0, 1
  li t4, 2
  bne t0, t4, cont
trigger:
  nop
cont:
  li t3, 5
  blt t0, t3, loop
  li a7, 93
  ecall
"""
        prog = assemble(src)
        m = _machine(prog, trace_compile)
        proc = Process.attach(m)
        proc.insert_breakpoint(prog.symbol("trigger").address)
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        assert m.x[10] == 2  # two iterations of the original body ran

        patch_addr = prog.symbol("patch_me").address
        proc.write_memory(patch_addr, _addi_a0(10).to_bytes(4, "little"))
        proc.remove_breakpoint(patch_addr)  # no-op; bp is at trigger
        proc.remove_breakpoint(prog.symbol("trigger").address)

        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        # iterations 3-5 ran the patched body
        assert ev.exit_code == 2 + 3 * 10

    @pytest.mark.parametrize("trace_compile", MODES)
    def test_breakpoint_inserted_into_compiled_loop(self, trace_compile):
        """Breakpoint insertion is itself a code write: planting one in
        a loop that already ran (so its traces exist) must fire on the
        next iteration, not execute a stale block past it."""
        src = """
_start:
  li a0, 0
  li t0, 0
loop:
  addi t0, t0, 1
body:
  addi a0, a0, 1
  li t3, 2
  bne t0, t3, cont
mid:
  nop
cont:
  li t4, 6
  blt t0, t4, loop
  li a7, 93
  ecall
"""
        prog = assemble(src)
        m = _machine(prog, trace_compile)
        proc = Process.attach(m)
        proc.insert_breakpoint(prog.symbol("mid").address)
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT

        # the loop body's traces are hot now; plant a breakpoint inside
        body = prog.symbol("body").address
        proc.insert_breakpoint(body)
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        assert ev.pc == body
        assert m.x[5] == 3  # t0: stopped in iteration 3, before the addi

        proc.remove_breakpoint(body)
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        assert ev.exit_code == 6


class TestRuntimeInstrumentation:
    def _attach_run(self, trace_compile):
        """Dynamic attach: run to the first fib call (compiling traces
        over the whole program), install entry counters mid-run, finish.
        The springboard install must invalidate the compiled blocks."""
        b = open_binary(compile_source(fib_source(9)))
        m = Machine(P550, trace_compile=trace_compile)
        b.symtab.load_into(m)
        proc = Process.attach(m, b.symtab)
        fib_entry = b.function("fib").entry
        proc.insert_breakpoint(fib_entry)
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        proc.remove_breakpoint(fib_entry)

        c = b.allocate_variable("entries")
        b.insert(b.points("fib", PointType.FUNC_ENTRY), IncrementVar(c))
        proc2 = b.attach_and_instrument(m)
        ev = proc2.continue_to_event()
        assert ev.type is EventType.EXITED
        count = b.read_variable(m, c)
        assert count > 0
        return count, m.exit_code, m.instret, m.ucycles

    @pytest.mark.parametrize("trace_compile", MODES)
    def test_attach_and_instrument_mid_run(self, trace_compile):
        self._attach_run(trace_compile)

    def test_attach_modes_agree(self):
        assert self._attach_run(True) == self._attach_run(False)


class TestTraceCacheInternals:
    def _hot_machine(self):
        """A machine stopped at a breakpoint with loop traces compiled."""
        src = """
_start:
  li a0, 0
  li t0, 0
loop:
  addi t0, t0, 1
  addi a0, a0, 1
  li t3, 2
  bne t0, t3, cont
mid:
  nop
cont:
  li t4, 6
  blt t0, t4, loop
  li a7, 93
  ecall
"""
        prog = assemble(src)
        m = _machine(prog, True)
        proc = Process.attach(m)
        proc.insert_breakpoint(prog.symbol("mid").address)
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        return m, prog, proc

    def test_write_mem_drops_overlapping_traces(self):
        m, prog, _ = self._hot_machine()
        assert m.traces.fns, "loop should have compiled traces"
        target = prog.symbol("loop").address
        before = dict(m.traces.fns)
        m.write_mem(target, _addi_a0(0).to_bytes(4, "little"))
        assert all(e >= target + 4 or e < target - 3 + 1
                   for e in m.traces.fns
                   if e in before) or target not in m.traces.fns

    def test_invalidation_severs_chain_links(self):
        m, prog, proc = self._hot_machine()
        target = prog.symbol("loop").address
        m.invalidate_code_range(target, 4)
        # every remaining trace's chain cells must not point at a
        # dropped function: simply finishing the run proves it (a stale
        # chained call would run old code or crash)
        proc.remove_breakpoint(prog.symbol("mid").address)
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        assert ev.exit_code == 6

    def test_flush_icache_clears_traces(self):
        m, _, _ = self._hot_machine()
        assert m.traces.fns
        m.flush_icache()  # fence.i semantics: full flush
        assert not m.traces.fns

    def test_negative_entries_are_invalidated_too(self):
        """A pc rejected by the trace compiler (e.g. an ebreak planted
        by a breakpoint) is negatively cached; rewriting it must drop
        the negative entry so the new instruction compiles."""
        m, prog, proc = self._hot_machine()
        mid = prog.symbol("mid").address
        # 'mid' currently holds the breakpoint's ebreak -> negative entry
        assert m.traces.fns.get(mid) is False
        proc.remove_breakpoint(mid)  # restores the nop (a code write)
        assert mid not in m.traces.fns
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        assert ev.exit_code == 6


class TestObserverTraceCacheInteraction:
    """Event-stream observers (repro.telemetry.events) vs the trace
    cache: attach/detach must invalidate or deoptimise compiled
    superblocks per the observer-overhead rule (docs/INTERNALS.md) and
    never perturb architectural state."""

    SRC = fib_source(10)

    def _baseline(self):
        prog = compile_source(self.SRC)
        m = _machine(prog, True)
        ev = m.run()
        assert ev.reason is StopReason.EXITED
        return prog, m

    def _state(self, m):
        return (list(m.x), list(m.f), m.pc, m.instret, m.ucycles,
                bytes(m.stdout))

    def test_attach_block_observer_flushes_compiled_traces(self):
        from repro.telemetry.events import EventStream

        prog, _ = self._baseline()
        m = _machine(prog, True)
        m.run()  # compiles traces (no block-enter emits inside)
        assert m.traces.fns
        es = EventStream(granularity="block")
        m.attach_observer(es)
        assert not m.traces.fns, \
            "block observer needs traces recompiled with embedded emits"
        m.detach_observer(es)
        assert not m.traces.fns, \
            "detach must drop traces that carry stale emit bindings"

    def test_attach_instruction_observer_keeps_traces(self):
        from repro.telemetry.events import EventStream

        prog, _ = self._baseline()
        m = _machine(prog, True)
        m.run()
        compiled = dict(m.traces.fns)
        es = EventStream()
        m.attach_observer(es)
        assert m.traces.fns == compiled, \
            "instruction observer deopts dispatch; traces stay cached"
        m.detach_observer(es)
        assert m.traces.fns == compiled

    @pytest.mark.parametrize("granularity", ["instruction", "block"])
    def test_mid_run_attach_detach_preserves_state(self, granularity):
        """Run A: plain.  Run B: stop at a breakpoint mid-run, attach an
        observer, continue, detach at a second stop, finish.  Both runs
        must agree bit-for-bit on the architectural outcome."""
        from repro.telemetry.events import EventStream

        prog, plain = self._baseline()
        m = _machine(prog, True)
        proc = Process.attach(m)
        fib = prog.symbol("fib").address
        proc.insert_breakpoint(fib)
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        es = EventStream(granularity=granularity)
        m.attach_observer(es)
        ev = proc.continue_to_event()  # runs observed
        assert ev.type is EventType.STOPPED_BREAKPOINT
        m.detach_observer(es)
        proc.remove_breakpoint(fib)
        ev = proc.continue_to_event()  # runs unobserved again
        assert ev.type is EventType.EXITED
        assert self._state(m) == self._state(plain)
        assert len(es) > 0, "the observed stretch must have emitted"

    def test_block_events_only_from_observed_stretch(self):
        """Events emitted while attached; silence before and after."""
        from repro.telemetry.events import BLOCK, EventStream

        prog, _ = self._baseline()
        m = _machine(prog, True)
        proc = Process.attach(m)
        fib = prog.symbol("fib").address
        proc.insert_breakpoint(fib)
        proc.continue_to_event()
        es = EventStream(granularity="block")
        m.attach_observer(es)
        proc.continue_to_event()
        m.detach_observer(es)
        seen = len(es)
        assert seen > 0
        assert all(e[0] == BLOCK for e in es)
        proc.remove_breakpoint(fib)
        proc.continue_to_event()
        assert len(es) == seen, "no events after detach"

    def test_self_modifying_store_invalidates_emitting_traces(self):
        """The PR-1 invalidation rules hold for traces that carry
        embedded block-enter emits: patched code re-fetches and the
        patched instruction's effect is observed."""
        from repro.telemetry.events import EventStream

        src = f"""
_start:
  la t0, target
  li t1, {_addi_a0(100):#x}
  li a0, 0
  sw t1, 0(t0)
target:
  addi a0, a0, 1
  li a7, 93
  ecall
"""
        m = _machine(assemble(src), True)
        es = EventStream(granularity="block")
        ev = m.run(trace=es)
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == 100
        assert len(es) > 0
