"""Tests for the SAIL-substitute pipeline (paper §3.2.4): DSL parsing,
JSON round-trip, class generation, and registry fallback behaviour."""

import pytest

from repro.riscv.encoder import make
from repro.riscv.opcodes import all_specs, specs_for_extension
from repro.semantics import (
    Semantics, coverage_report, has_precise_semantics, reads_memory,
    register_defs, register_uses, sail_semantics, semantics_for,
    writes_memory, writes_pc,
)
from repro.semantics.ir import (
    BinOp, Const, MemRead, PCWrite, RegRef, RegWrite, semantics_from_json,
    semantics_to_json,
)
from repro.semantics.sail import (
    SAIL_SOURCE, SailParseError, from_json_document, generate_source,
    load_generated, parse_sail, to_json_document,
)


class TestDSLParsing:
    def test_parse_full_source(self):
        sems = parse_sail(SAIL_SOURCE)
        assert "add" in sems and "jalr" in sems and "czero.eqz" in sems

    def test_simple_assignment(self):
        sems = parse_sail("add { X(rd) = X(rs1) + X(rs2) }")
        sem = sems["add"]
        assert len(sem.effects) == 1
        eff = sem.effects[0]
        assert isinstance(eff, RegWrite)
        assert eff.operand == "rd"
        assert isinstance(eff.value, BinOp) and eff.value.op == "add"

    def test_conditional(self):
        sems = parse_sail("beq { if X(rs1) == X(rs2) { pc = pc + imm } }")
        eff = sems["beq"].effects[0]
        assert eff.cond.op == "eq"
        assert isinstance(eff.then[0], PCWrite)

    def test_memory_store(self):
        sems = parse_sail("sd { mem(X(rs1) + imm, 8) = X(rs2) }")
        assert sems["sd"].writes_memory()
        assert not sems["sd"].reads_memory()

    def test_skip_produces_empty(self):
        sems = parse_sail("fence { skip }")
        assert sems["fence"].effects == ()

    def test_precedence_mul_over_add(self):
        sems = parse_sail("t { X(rd) = X(rs1) + X(rs2) * 2 }")
        v = sems["t"].effects[0].value
        assert v.op == "add" and v.rhs.op == "mul"

    def test_parens_override(self):
        sems = parse_sail("t { X(rd) = (X(rs1) + X(rs2)) * 2 }")
        assert sems["t"].effects[0].value.op == "mul"

    def test_duplicate_mnemonic_rejected(self):
        with pytest.raises(SailParseError):
            parse_sail("add { skip }\nadd { skip }")

    def test_garbage_rejected(self):
        with pytest.raises(SailParseError):
            parse_sail("add { X(rd) = ??? }")

    def test_unclosed_block_rejected(self):
        with pytest.raises(SailParseError):
            parse_sail("add { X(rd) = X(rs1)")


class TestJSONInterchange:
    def test_roundtrip_document(self):
        sems = parse_sail(SAIL_SOURCE)
        doc = to_json_document(sems)
        back = from_json_document(doc)
        assert set(back) == set(sems)
        assert back["jal"] == sems["jal"]

    def test_roundtrip_single(self):
        sem = parse_sail("lw { X(rd) = sext(mem(X(rs1) + imm, 4), 32) }")["lw"]
        assert semantics_from_json(semantics_to_json(sem)) == sem

    def test_bad_document_rejected(self):
        with pytest.raises(ValueError):
            from_json_document('{"format": "other"}')


class TestCodeGeneration:
    def test_generated_module_loads(self):
        doc = to_json_document(parse_sail(SAIL_SOURCE))
        mod = load_generated(generate_source(doc))
        assert "add" in mod.SEMANTIC_CLASSES
        cls = mod.SEMANTIC_CLASSES["add"]
        assert cls.register_defs() == {("x", "rd")}
        assert cls.register_uses() == {("x", "rs1"), ("x", "rs2")}

    def test_generated_classes_match_parsed_semantics(self):
        sems = parse_sail(SAIL_SOURCE)
        mod = load_generated(generate_source(to_json_document(sems)))
        for mn, sem in sems.items():
            assert mod.SEMANTIC_CLASSES[mn].SEMANTICS == sem

    def test_pipeline_deterministic(self):
        """Two pipeline runs produce byte-identical generated source
        (the JSON document is sorted/canonical)."""
        doc1 = to_json_document(parse_sail(SAIL_SOURCE))
        doc2 = to_json_document(parse_sail(SAIL_SOURCE))
        assert doc1 == doc2
        assert generate_source(doc1) == generate_source(doc2)

    def test_adding_extension_is_pipeline_rerun(self):
        """Paper §3.4: new extensions only require new DSL clauses."""
        extended = SAIL_SOURCE + "\nmyext.op { X(rd) = X(rs1) ^ 42 }\n"
        mod = load_generated(generate_source(
            to_json_document(parse_sail(extended))))
        assert "myext.op" in mod.SEMANTIC_CLASSES


class TestRegistry:
    def test_im_extensions_fully_covered(self):
        """Every I and M instruction that computes values must have
        precise SAIL semantics (what slicing needs)."""
        for ext in ("i", "m"):
            for spec in specs_for_extension(ext):
                if spec.mnemonic in ("ecall", "ebreak"):
                    continue  # environment calls: no dataflow semantics
                assert has_precise_semantics(spec.mnemonic), spec.mnemonic

    def test_fallback_for_fp(self):
        assert not has_precise_semantics("fadd.d")
        i = make("fadd.d", rd=1, rs1=2, rs2=3)
        assert register_defs(i) == {("f", 1)}
        assert register_uses(i) == {("f", 2), ("f", 3)}

    def test_fp_load_uses_int_base(self):
        i = make("fld", rd=5, rs1=10, imm=0)
        assert register_uses(i) == {("x", 10)}
        assert register_defs(i) == {("f", 5)}
        assert reads_memory(i)

    def test_x0_reads_and_writes_dropped(self):
        i = make("addi", rd=0, rs1=0, imm=1)
        assert register_uses(i) == set()
        assert register_defs(i) == set()

    def test_store_memory_flags(self):
        i = make("sd", rs2=1, rs1=2, imm=0)
        assert writes_memory(i) and not reads_memory(i)
        assert register_uses(i) == {("x", 1), ("x", 2)}
        assert register_defs(i) == set()

    def test_amo_flags_via_fallback(self):
        i = make("amoadd.d", rd=1, rs1=2, rs2=3)
        assert reads_memory(i) and writes_memory(i)
        lr = make("lr.d", rd=1, rs1=2)
        assert reads_memory(lr) and not writes_memory(lr)

    def test_writes_pc(self):
        assert writes_pc(make("jal", rd=1, imm=0))
        assert writes_pc(make("beq", rs1=0, rs2=0, imm=0))
        assert not writes_pc(make("add", rd=1, rs1=2, rs2=3))

    def test_coverage_report_shape(self):
        rep = coverage_report()
        assert rep["add"] is True
        assert rep["fadd.d"] is False
        assert len(rep) == sum(1 for _ in all_specs())

    def test_semantics_for_by_instruction_or_name(self):
        i = make("add", rd=1, rs1=2, rs2=3)
        assert semantics_for(i) is semantics_for("add")
        assert isinstance(semantics_for("add"), Semantics)
        assert semantics_for("fadd.d") is None
