"""Interprocedural liveness tests: callee summaries sharpen call sites,
and the sharpened analysis survives adversarial clobbering."""

import pytest

from repro.api import open_binary
from repro.codegen import Const, Sequence, SetReg
from repro.dataflow import (
    CONSERVATIVE, analyze_interprocedural, analyze_liveness,
)
from repro.minicc import compile_source, fib_source
from repro.parse import parse_binary
from repro.riscv import assemble, lookup
from repro.sim import StopReason
from repro.symtab import Symtab

# leaf reads only a0, writes only a0 and t0
LEAF_PROGRAM = """
.globl _start
_start:
  li a1, 111              # caller value in a1, live across the call
  li a3, 333              # caller value in a3, also live across
  li a0, 5
  call leaf
  add a0, a0, a1
  add a0, a0, a3
  li a7, 93
  ecall
.type leaf, @function
leaf:
  addi t0, a0, 1
  addi a0, t0, 1
  ret
"""


def _co(src):
    st = Symtab.from_program(assemble(src))
    return st, parse_binary(st)


class TestSummaries:
    def test_leaf_summary_minimal(self):
        st, co = _co(LEAF_PROGRAM)
        ip = analyze_interprocedural(co)
        leaf = co.function_by_name("leaf")
        s = ip.summary_for(leaf)
        # reads: a0 (argument) and ra (for the ret)
        assert lookup("a0") in s.uses
        assert lookup("a1") not in s.uses
        assert lookup("a7") not in s.uses
        # writes: a0 and t0 only
        assert lookup("a0") in s.kills and lookup("t0") in s.kills
        assert lookup("t3") not in s.kills

    def test_recursive_summary_converges(self):
        program = compile_source(fib_source(6))
        co = parse_binary(Symtab.from_program(program))
        ip = analyze_interprocedural(co)
        fib = co.function_by_name("fib")
        s = ip.summary_for(fib)
        assert lookup("a0") in s.uses  # its argument
        assert s != CONSERVATIVE or True  # converged to something

    def test_unknown_callee_conservative(self):
        st, co = _co("""
.type f, @function
f:
  jalr ra, 0(a5)      # unresolvable indirect call
  ret
""")
        ip = analyze_interprocedural(co)
        f = co.function_by_name("f")
        lv = ip.result_for(f)
        # before the indirect call, all argument registers must be live
        assert lookup("a7") in lv.live_before(f.entry)


class TestPrecisionGain:
    def test_more_dead_registers_at_call_sites(self):
        st, co = _co(LEAF_PROGRAM)
        fn = co.function_containing(st.entry)
        call_block = next(b for b in fn.blocks.values()
                          if any(e.kind.value == "call"
                                 for e in b.out_edges))
        site = call_block.last.address

        intra = analyze_liveness(fn)
        sharp = analyze_interprocedural(co).result_for(fn)
        dead_intra = set(intra.dead_before(site))
        dead_sharp = set(sharp.dead_before(site))
        # summaries can only add dead registers, never remove
        assert dead_intra <= dead_sharp
        # the leaf reads only a0: a2/a4..a7 become dead at the call
        assert lookup("a2") in dead_sharp
        assert lookup("a2") not in dead_intra
        # a1/a3 carry live caller values: never dead
        assert lookup("a1") not in dead_sharp
        assert lookup("a3") not in dead_sharp

    def test_patcher_option(self):
        program = compile_source(fib_source(8))
        st = Symtab.from_program(program)
        from repro.codegen import IncrementVar
        from repro.patch import Patcher, function_entry
        co = parse_binary(st)
        p = Patcher(st, co, interprocedural_liveness=True)
        c = p.allocate_var("n")
        p.insert(function_entry(co.function_by_name("fib")),
                 IncrementVar(c))
        res = p.commit()
        from repro.sim import Machine
        m = Machine()
        st.load_into(m)
        res.apply_to_machine(m)
        ev = m.run(max_steps=5_000_000)
        assert ev.reason is StopReason.EXITED
        assert m.mem.read_int(c.address, 8) == 67


class TestSharpenedSoundness:
    GARBAGE = 0x0BAD_C0DE_0BAD_C0DE

    @pytest.mark.parametrize("src", [fib_source(8), LEAF_PROGRAM],
                             ids=["fib", "leaf"])
    def test_clobbering_sharp_dead_registers_is_invisible(self, src):
        """The adversarial clobber harness, run against the *sharpened*
        analysis: every register it calls dead really is dead."""
        if src.startswith("\n.globl") or ".globl _start" in src:
            program = assemble(src)
        else:
            program = compile_source(src)
        st = Symtab.from_program(program)

        base = open_binary(st)
        m0, ev0 = base.run_instrumented(max_steps=10_000_000)
        assert ev0.reason is StopReason.EXITED

        b = open_binary(st)
        from repro.patch import Patcher, PointType
        b._patcher = Patcher(st, b.cfg, interprocedural_liveness=True)
        n = 0
        seen = set()
        for fn in b.functions():
            for pt in b.points(fn, PointType.BLOCK_ENTRY):
                if pt.address in seen:
                    continue
                seen.add(pt.address)
                # the shared-block-safe view a real tool gets from the
                # patcher
                lv = b._patcher._liveness_at(pt.address, fn)
                dead = lv.dead_before(pt.address)
                if dead:
                    b.insert(pt, Sequence(
                        [SetReg(r, Const(self.GARBAGE)) for r in dead]))
                    n += len(dead)
        assert n > 0
        m1, ev1 = b.run_instrumented(max_steps=20_000_000)
        assert ev1.reason is StopReason.EXITED
        assert bytes(m1.stdout) == bytes(m0.stdout)
        assert ev1.exit_code == ev0.exit_code
