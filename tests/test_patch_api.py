"""PatchAPI tests: points, springboard ladder (§3.1.2), relocation,
trampolines, dynamic + static instrumentation correctness."""

import pytest

from repro.codegen import (
    BinExpr, CallFunc, Const, If, IncrementVar, RegExpr, Sequence, SetVar,
)
from repro.minicc import (
    Options, compile_source, fib_source, matmul_source, switch_source,
)
from repro.parse import parse_binary
from repro.patch import (
    PatchConflict, Patcher, PointType, SpringboardKind, block_entries,
    build_springboard, call_sites, function_entry, function_exits,
    instruction_point, load_instrumented, loop_backedges, points_for,
    rewrite,
)
from repro.riscv import RV64GC, assemble, lookup
from repro.riscv.extensions import RV64G
from repro.sim import Machine, StopReason
from repro.symtab import Symtab


def setup_c(src, opts=None):
    p = compile_source(src, opts)
    st = Symtab.from_program(p)
    co = parse_binary(st)
    return st, co


def run_instrumented(st, res, max_steps=5_000_000):
    m = Machine()
    st.load_into(m)
    res.apply_to_machine(m)
    ev = m.run(max_steps=max_steps)
    assert ev.reason is StopReason.EXITED, ev
    return m


def run_baseline(st, max_steps=5_000_000):
    m = Machine()
    st.load_into(m)
    ev = m.run(max_steps=max_steps)
    assert ev.reason is StopReason.EXITED
    return m


class TestPoints:
    def test_point_discovery(self):
        st, co = setup_c(fib_source(5))
        fib = co.function_by_name("fib")
        assert function_entry(fib).address == fib.entry
        assert function_exits(fib)
        assert call_sites(fib)
        assert len(block_entries(fib)) == len(
            [b for b in fib.blocks.values() if b.insns])

    def test_loop_backedge_points(self):
        st, co = setup_c(matmul_source(4, 1))
        mult = co.function_by_name("multiply")
        pts = loop_backedges(mult)
        assert len(pts) == 3  # triple nest

    def test_points_for_dispatch(self):
        st, co = setup_c(fib_source(5))
        fib = co.function_by_name("fib")
        assert points_for(fib, PointType.FUNC_ENTRY)[0].type \
            is PointType.FUNC_ENTRY
        assert points_for(fib, PointType.BLOCK_ENTRY)

    def test_instruction_point_validation(self):
        from repro.patch import PointError
        st, co = setup_c(fib_source(5))
        fib = co.function_by_name("fib")
        with pytest.raises(PointError):
            instruction_point(fib, fib.entry + 1)  # mid-instruction


class TestSpringboardLadder:
    """Paper §3.1.2: c.j -> jal -> auipc+jalr -> trap."""

    def test_jal_for_near_targets(self):
        sb = build_springboard(0x10000, 0x20000, 4, RV64GC)
        assert sb.kind is SpringboardKind.JAL
        assert len(sb.code) == 4

    def test_cj_for_two_byte_slot(self):
        sb = build_springboard(0x10000, 0x10400, 2, RV64GC)
        assert sb.kind is SpringboardKind.CJ
        assert len(sb.code) == 2

    def test_far_form_when_out_of_jal_range(self):
        sb = build_springboard(0x10000, 0x10000 + (4 << 20), 16, RV64GC)
        assert sb.kind is SpringboardKind.AUIPC_JALR
        assert sb.clobbers is not None
        assert len(sb.code) == 16

    def test_trap_fallback_four_bytes(self):
        sb = build_springboard(0x10000, 0x10000 + (4 << 20), 4, RV64GC)
        assert sb.kind is SpringboardKind.TRAP
        assert sb.needs_trap

    def test_trap_fallback_two_bytes(self):
        # the paper's worst case: 2-byte slot, far target
        sb = build_springboard(0x10000, 0x10000 + (4 << 20), 2, RV64GC)
        assert sb.kind is SpringboardKind.TRAP
        assert len(sb.code) == 2

    def test_two_byte_trap_requires_c(self):
        from repro.patch import SpringboardError
        with pytest.raises(SpringboardError):
            build_springboard(0x10000, 0x10000 + (4 << 20), 2, RV64G)

    def test_padding_fills_slot(self):
        sb = build_springboard(0x10000, 0x10100, 8, RV64GC)
        assert len(sb.code) == 8  # jal + nop


class TestEntryInstrumentation:
    def test_counter_counts_calls(self):
        st, co = setup_c(fib_source(10))
        patcher = Patcher(st, co)
        c = patcher.allocate_var("n")
        patcher.insert(function_entry(co.function_by_name("fib")),
                       IncrementVar(c))
        res = patcher.commit()
        m = run_instrumented(st, res)
        assert m.mem.read_int(c.address, 8) == 177  # 2*fib(11)-1

    def test_output_unchanged(self):
        st, co = setup_c(matmul_source(5, 2))
        base = run_baseline(st)
        patcher = Patcher(st, co)
        c = patcher.allocate_var("n")
        patcher.insert(function_entry(co.function_by_name("multiply")),
                       IncrementVar(c))
        m = run_instrumented(st, patcher.commit())
        # checksum line must match exactly (timings differ)
        assert bytes(m.stdout).split()[1] == bytes(base.stdout).split()[1]
        assert m.mem.read_int(c.address, 8) == 2

    def test_entry_and_exit_balance(self):
        st, co = setup_c(fib_source(8))
        patcher = Patcher(st, co)
        ci = patcher.allocate_var("in")
        cx = patcher.allocate_var("out")
        fib = co.function_by_name("fib")
        patcher.insert(function_entry(fib), IncrementVar(ci))
        for pt in function_exits(fib):
            patcher.insert(pt, IncrementVar(cx))
        m = run_instrumented(st, patcher.commit())
        assert m.mem.read_int(ci.address, 8) == \
            m.mem.read_int(cx.address, 8) > 0


class TestBlockAndLoopInstrumentation:
    def test_basic_block_counting(self):
        st, co = setup_c(matmul_source(4, 1))
        mult = co.function_by_name("multiply")
        patcher = Patcher(st, co)
        c = patcher.allocate_var("bb")
        for pt in block_entries(mult):
            patcher.insert(pt, IncrementVar(c))
        m = run_instrumented(st, patcher.commit())
        n = 4
        # innermost block runs n^3 times; total must exceed that
        assert m.mem.read_int(c.address, 8) > n ** 3

    def test_block_counts_match_simulator_trace(self):
        """Cross-validate instrumentation against ground truth counted
        by stepping the uninstrumented binary."""
        st, co = setup_c(fib_source(6))
        fib = co.function_by_name("fib")
        starts = {b.start for b in fib.blocks.values() if b.insns}

        m = Machine()
        st.load_into(m)
        truth = 0
        while True:
            if m.pc in starts:
                truth += 1
            if m.step() is not None:
                break

        patcher = Patcher(st, co)
        c = patcher.allocate_var("bb")
        for pt in block_entries(fib):
            patcher.insert(pt, IncrementVar(c))
        mi = run_instrumented(st, patcher.commit())
        assert mi.mem.read_int(c.address, 8) == truth

    def test_loop_backedge_counting(self):
        st, co = setup_c("""
long main(void) {
    long s = 0;
    for (long i = 0; i < 10; i = i + 1) { s = s + i; }
    return s;
}
""")
        main = co.function_by_name("main")
        patcher = Patcher(st, co)
        c = patcher.allocate_var("back")
        for pt in loop_backedges(main):
            patcher.insert(pt, IncrementVar(c))
        m = run_instrumented(st, patcher.commit())
        # The back-edge block is entered once per iteration; whether the
        # final (exiting) pass counts depends on loop shape — accept 10.
        assert m.mem.read_int(c.address, 8) == 10

    def test_call_site_counting(self):
        st, co = setup_c(fib_source(8))
        fib = co.function_by_name("fib")
        patcher = Patcher(st, co)
        c = patcher.allocate_var("sites")
        for pt in call_sites(fib):
            patcher.insert(pt, IncrementVar(c))
        m = run_instrumented(st, patcher.commit())
        # every fib invocation except the root comes from a call site in
        # fib; main's call isn't instrumented: 177? for n=8: calls = 2*fib(9)-1 = 67
        assert m.mem.read_int(c.address, 8) == 66  # 67 total - 1 from main


class TestConditionalPayloads:
    def test_conditional_snippet(self):
        st, co = setup_c(fib_source(8))
        fib = co.function_by_name("fib")
        patcher = Patcher(st, co)
        small = patcher.allocate_var("small")
        # count entries where a0 (the argument) < 2 — the base cases
        patcher.insert(
            function_entry(fib),
            If(BinExpr("lt", RegExpr(lookup("a0")), Const(2)),
               IncrementVar(small)))
        m = run_instrumented(st, patcher.commit())
        # base-case invocations of fib(8) = fib(9) = 34
        assert m.mem.read_int(small.address, 8) == 34

    def test_multiple_snippets_one_point(self):
        st, co = setup_c(fib_source(6))
        fib = co.function_by_name("fib")
        patcher = Patcher(st, co)
        a = patcher.allocate_var("a")
        b = patcher.allocate_var("b")
        pt = function_entry(fib)
        patcher.insert(pt, IncrementVar(a))
        patcher.insert(pt, IncrementVar(b, step=2))
        m = run_instrumented(st, patcher.commit())
        na = m.mem.read_int(a.address, 8)
        nb = m.mem.read_int(b.address, 8)
        assert nb == 2 * na > 0


class TestSpillMode:
    def test_spill_mode_still_correct(self):
        """use_dead_registers=False (legacy x86 behaviour): slower but
        identical results."""
        st, co = setup_c(matmul_source(4, 2))
        base = run_baseline(st)

        patcher = Patcher(st, co, use_dead_registers=False)
        c = patcher.allocate_var("bb")
        mult = co.function_by_name("multiply")
        for pt in block_entries(mult):
            patcher.insert(pt, IncrementVar(c))
        res = patcher.commit()
        assert res.stats.spilled_regs > 0
        assert res.stats.dead_regs_used == 0
        m = run_instrumented(st, res)
        assert bytes(m.stdout).split()[1] == bytes(base.stdout).split()[1]

    def test_spill_mode_costs_more_cycles(self):
        st, co = setup_c(matmul_source(4, 2))
        mult = co.function_by_name("multiply")

        def run(dead):
            patcher = Patcher(st, co, use_dead_registers=dead)
            c = patcher.allocate_var("bb")
            for pt in block_entries(mult):
                patcher.insert(pt, IncrementVar(c))
            return run_instrumented(st, patcher.commit())

        fast = run(True)
        slow = run(False)
        assert slow.ucycles > fast.ucycles


class TestFarPatchArea:
    def test_far_trampolines_roundtrip(self):
        """Patch area beyond jal range: entry springboards take the
        auipc+jalr (or trap) rungs and execution stays correct."""
        st, co = setup_c(fib_source(8))
        fib = co.function_by_name("fib")
        patcher = Patcher(st, co, patch_base=0x10_0000 + (8 << 20))
        c = patcher.allocate_var("n")
        patcher.insert(function_entry(fib), IncrementVar(c))
        res = patcher.commit()
        kinds = set(res.stats.springboards)
        assert kinds <= {"auipc+jalr", "trap"}
        assert kinds  # at least one far-form springboard
        m = run_instrumented(st, res)
        assert m.mem.read_int(c.address, 8) == 67  # 2*fib(9)-1

    def test_trap_springboard_on_tiny_slot(self):
        """A 2-byte-instruction point with a far patch area must fall
        back to the compressed trap (paper's worst case)."""
        src = """
.globl _start
_start:
  li a0, 0
  c.addi a0, 5
  c.addi a0, 3
  li a7, 93
  ecall
"""
        p = assemble(src)
        st = Symtab.from_program(p)
        co = parse_binary(st)
        fn = co.function_containing(p.entry)
        # instrument the first c.addi (2-byte slot mid-block... use an
        # instruction point at its address)
        target = p.entry + 8  # li a0,0 is 4 bytes... c.addi at +4
        pt = instruction_point(fn, p.entry + 4)
        patcher = Patcher(st, co, patch_base=0x10_0000 + (8 << 20))
        c = patcher.allocate_var("hits")
        patcher.insert(pt, IncrementVar(c))
        res = patcher.commit()
        assert res.stats.springboards.get("trap", 0) >= 1
        m = Machine()
        st.load_into(m)
        res.apply_to_machine(m)
        ev = m.run(max_steps=10_000)
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == 8
        assert m.mem.read_int(c.address, 8) == 1

    def test_conflicting_points_rejected(self):
        st, co = setup_c(fib_source(5))
        fib = co.function_by_name("fib")
        # entry consumes >= 4 bytes; a point 2 bytes later must conflict
        # only if the entry instruction is compressed — craft directly:
        src = """
.globl _start
_start:
  c.li a0, 1
  c.addi a0, 2
  li a7, 93
  ecall
"""
        p = assemble(src)
        st2 = Symtab.from_program(p)
        co2 = parse_binary(st2)
        fn = co2.function_containing(p.entry)
        patcher = Patcher(st2, co2)
        c = patcher.allocate_var("x")
        patcher.insert(instruction_point(fn, p.entry), IncrementVar(c))
        patcher.insert(instruction_point(fn, p.entry + 2), IncrementVar(c))
        with pytest.raises(PatchConflict):
            patcher.commit()


class TestStaticRewriting:
    def test_rewrite_and_reload(self):
        st, co = setup_c(fib_source(9))
        patcher = Patcher(st, co)
        c = patcher.allocate_var("calls")
        patcher.insert(function_entry(co.function_by_name("fib")),
                       IncrementVar(c))
        blob = rewrite(st, patcher.commit())

        m = Machine()
        st2 = load_instrumented(m, blob)
        ev = m.run(max_steps=5_000_000)
        assert ev.reason is StopReason.EXITED
        assert bytes(m.stdout).startswith(b"34\n")
        assert m.mem.read_int(c.address, 8) == 109  # 2*fib(10)-1

    def test_rewritten_elf_has_dyninst_sections(self):
        from repro.elf import read_elf
        st, co = setup_c(fib_source(5))
        patcher = Patcher(st, co)
        c = patcher.allocate_var("calls")
        patcher.insert(function_entry(co.function_by_name("fib")),
                       IncrementVar(c))
        blob = rewrite(st, patcher.commit())
        elf = read_elf(blob)
        names = {s.name for s in elf.sections}
        assert ".dyninst.text" in names
        assert ".dyninst.data" in names
        syms = elf.symbols_by_name()
        assert "dyninst$calls" in syms

    def test_rewritten_binary_reanalyzable(self):
        """Dyninst can parse its own output: the instrumented binary's
        CFG must include the trampoline region."""
        st, co = setup_c(fib_source(5))
        patcher = Patcher(st, co)
        c = patcher.allocate_var("calls")
        patcher.insert(function_entry(co.function_by_name("fib")),
                       IncrementVar(c))
        blob = rewrite(st, patcher.commit())
        st2 = Symtab.from_bytes(blob)
        co2 = parse_binary(st2)
        assert co2.functions  # parse succeeds on the rewritten binary

    def test_switch_program_instrumented(self):
        """Jump-table-bearing code instruments correctly (table targets
        keep working through relocation)."""
        st, co = setup_c(switch_source(30))
        base = run_baseline(st)
        d = co.function_by_name("dispatch")
        patcher = Patcher(st, co)
        c = patcher.allocate_var("bb")
        for pt in block_entries(d):
            patcher.insert(pt, IncrementVar(c))
        m = run_instrumented(st, patcher.commit())
        assert bytes(m.stdout) == bytes(base.stdout)
        assert m.mem.read_int(c.address, 8) > 0
