"""SymtabAPI tests: extension discovery (§3.2.1), regions, symbols,
stripped-binary behaviour."""

import pytest

from repro.elf import read_elf, write_elf, write_program
from repro.elf.writer import ElfImage, SectionImage, image_from_program
from repro.riscv import RV64GC, assemble
from repro.riscv.extensions import ISASubset
from repro.symtab import Symtab

SRC = """
.globl _start
.type _start, @function
_start:
  li a7, 93
  li a0, 3
  ecall
.type helper, @function
helper:
  ret
.data
val: .dword 42
"""


@pytest.fixture
def program():
    return assemble(SRC)


@pytest.fixture
def symtab(program):
    return Symtab.from_bytes(write_program(program))


class TestExtensionDiscovery:
    def test_attributes_preferred(self, symtab):
        assert symtab.isa_source == "attributes"
        assert symtab.isa.supports("c")
        assert symtab.isa.supports("d")
        assert symtab.isa.extensions == RV64GC.extensions

    def test_e_flags_fallback(self, program):
        blob = write_program(program, emit_attributes=False)
        st = Symtab.from_bytes(blob)
        assert st.isa_source == "e_flags"
        assert st.isa.supports("c")
        assert st.isa.supports("d")

    def test_e_flags_no_c_extension(self):
        from repro.riscv.extensions import RV64G
        p = assemble("nop\n", arch=RV64G)
        st = Symtab.from_bytes(write_program(p, emit_attributes=False))
        assert not st.isa.supports("c")

    def test_malformed_attributes_falls_back(self, program):
        image = image_from_program(program, emit_attributes=False)
        image.sections.append(SectionImage(
            ".riscv.attributes", b"garbage!", sh_type=0x7000_0003, align=1))
        st = Symtab.from_bytes(write_elf(image))
        assert st.isa_source == "e_flags"


class TestRegionsAndSymbols:
    def test_code_region(self, symtab, program):
        regions = symtab.code_regions()
        assert len(regions) == 1
        assert regions[0].addr == program.text_base
        assert regions[0].data == program.text

    def test_region_lookup(self, symtab, program):
        assert symtab.is_code(program.entry)
        assert not symtab.is_code(program.data_base)
        assert symtab.region_at(0xDEAD0000) is None

    def test_read_at_vaddr(self, symtab, program):
        assert symtab.read(program.data_base, 8) == (42).to_bytes(8, "little")

    def test_function_symbols(self, symtab):
        names = [s.name for s in symtab.function_symbols()]
        assert names == ["_start", "helper"]
        assert symtab.symbol("_start").is_global
        assert not symtab.symbol("helper").is_global

    def test_symbol_at(self, symtab, program):
        assert symtab.symbol_at(program.entry).name == "_start"
        assert symtab.symbol_at(program.entry + 2) is None

    def test_missing_symbol_raises(self, symtab):
        with pytest.raises(KeyError):
            symtab.symbol("nope")

    def test_from_program_equivalent(self, program):
        direct = Symtab.from_program(program)
        via_elf = Symtab.from_bytes(write_program(program))
        assert direct.entry == via_elf.entry
        assert {s.name for s in direct.function_symbols()} == \
               {s.name for s in via_elf.function_symbols()}
        assert direct.code_regions()[0].data == via_elf.code_regions()[0].data


class TestStrippedBinaries:
    def test_stripped_still_has_regions(self, program):
        """Dyninst analyzes stripped binaries opportunistically: drop the
        symbol table, keep code regions and entry."""
        image = image_from_program(program)
        image.symbols = []
        st = Symtab.from_bytes(write_elf(image))
        assert st.function_symbols() == []
        assert st.code_regions()
        assert st.entry == program.entry

    def test_non_riscv_rejected(self, program):
        blob = bytearray(write_program(program))
        blob[18] = 0x3E  # EM_X86_64
        with pytest.raises(ValueError):
            Symtab.from_bytes(bytes(blob))
