"""Property tests for the compression table: whenever ``try_compress``
produces a halfword, decoding it must recover the exact standard
instruction (mnemonic + fields) — compression may never change meaning.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.riscv.compressed import decode_compressed, try_compress

#: mnemonic -> strategy for its field dict
_reg = st.integers(0, 31)
_FIELDS = {
    "addi": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "imm": st.integers(-2048, 2047)}),
    "addiw": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "imm": st.integers(-2048, 2047)}),
    "andi": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "imm": st.integers(-2048, 2047)}),
    "lui": st.fixed_dictionaries(
        {"rd": _reg, "imm": st.integers(-(1 << 19), (1 << 19) - 1)}),
    "add": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "rs2": _reg}),
    "sub": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "rs2": _reg}),
    "xor": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "rs2": _reg}),
    "or": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "rs2": _reg}),
    "and": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "rs2": _reg}),
    "subw": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "rs2": _reg}),
    "addw": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "rs2": _reg}),
    "slli": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "shamt": st.integers(0, 63)}),
    "srli": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "shamt": st.integers(0, 63)}),
    "srai": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "shamt": st.integers(0, 63)}),
    "ld": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "imm": st.integers(-128, 600)}),
    "lw": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "imm": st.integers(-128, 300)}),
    "fld": st.fixed_dictionaries(
        {"rd": _reg, "rs1": _reg, "imm": st.integers(-128, 600)}),
    "sd": st.fixed_dictionaries(
        {"rs2": _reg, "rs1": _reg, "imm": st.integers(-128, 600)}),
    "sw": st.fixed_dictionaries(
        {"rs2": _reg, "rs1": _reg, "imm": st.integers(-128, 300)}),
    "fsd": st.fixed_dictionaries(
        {"rs2": _reg, "rs1": _reg, "imm": st.integers(-128, 600)}),
    "jalr": st.fixed_dictionaries(
        {"rd": st.integers(0, 1), "rs1": _reg,
         "imm": st.sampled_from([0, 4])}),
}


@settings(max_examples=200, deadline=None)
@given(data=st.data())
@pytest.mark.parametrize("mnemonic", sorted(_FIELDS), ids=str)
def test_compression_is_meaning_preserving(mnemonic, data):
    fields = dict(data.draw(_FIELDS[mnemonic]))
    hw = try_compress(mnemonic, fields)
    if hw is None:
        return
    back = decode_compressed(hw)
    # commutative operand swaps are allowed for xor/or/and/addw/add
    if back.fields != fields:
        g = dict(back.fields)
        swapped = dict(fields)
        swapped["rs1"], swapped["rs2"] = (fields.get("rs2"),
                                          fields.get("rs1"))
        assert back.mnemonic == mnemonic
        assert g == swapped, (mnemonic, fields, hw, back.fields)
    else:
        assert back.mnemonic == mnemonic


def test_specific_encodings():
    # c.sdsp: sd ra, 8(sp)
    hw = try_compress("sd", {"rs2": 1, "rs1": 2, "imm": 8})
    assert hw is not None
    back = decode_compressed(hw)
    assert back.compressed_mnemonic == "c.sdsp"
    assert back.fields == {"rs2": 1, "rs1": 2, "imm": 8}
    # c.ldsp: ld a0, 16(sp)
    hw = try_compress("ld", {"rd": 10, "rs1": 2, "imm": 16})
    assert decode_compressed(hw).compressed_mnemonic == "c.ldsp"
    # c.addi16sp
    hw = try_compress("addi", {"rd": 2, "rs1": 2, "imm": -64})
    assert decode_compressed(hw).compressed_mnemonic == "c.addi16sp"
    # c.addi4spn: addi a0, sp, 16
    hw = try_compress("addi", {"rd": 10, "rs1": 2, "imm": 16})
    assert decode_compressed(hw).compressed_mnemonic == "c.addi4spn"
    # c.sub with window regs
    hw = try_compress("sub", {"rd": 8, "rs1": 8, "rs2": 9})
    assert decode_compressed(hw).compressed_mnemonic == "c.sub"
    # misaligned offset: no compression
    assert try_compress("sd", {"rs2": 1, "rs1": 2, "imm": 4}) is None
