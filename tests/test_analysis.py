"""The immutable Analysis / mutable BinaryEdit split: analyze(),
source kinds (including ELF paths), sharing one analysis across
sessions, and warm revival equivalence."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.api import (
    Analysis, AnalysisMismatchError, ApiError, BinaryEdit,
    InstrumentOptions, analyze, open_binary,
)
from repro.artifacts import ArtifactStore
from repro.codegen.snippets import IncrementVar
from repro.elf.writer import write_program
from repro.minicc import compile_source
from repro.minicc.workloads import fib_source
from repro.patch.points import PointType
from repro.sim.machine import StopReason
from repro.symtab.symtab import Symtab


@pytest.fixture(scope="module")
def fib_prog():
    return compile_source(fib_source(8))


@pytest.fixture(scope="module")
def fib_elf(fib_prog):
    return write_program(fib_prog)


def _instrument_and_run(edit):
    c = edit.allocate_variable("calls")
    edit.insert(edit.points("fib", PointType.FUNC_ENTRY),
                IncrementVar(c))
    m, ev = edit.run_instrumented()
    return ev.reason, list(m.x), edit.read_variable(m, c)


class TestSourceKinds:
    def test_bytes_program_symtab_agree(self, fib_prog, fib_elf):
        kinds = [fib_elf, fib_prog, Symtab.from_program(fib_prog)]
        entries = [sorted(analyze(k, store=False).cfg.functions)
                   for k in kinds]
        assert entries[0] == entries[1] == entries[2]

    def test_path_source(self, fib_elf, tmp_path):
        p = tmp_path / "mutatee.elf"
        p.write_bytes(fib_elf)
        for source in (str(p), p):  # str and PathLike
            a = analyze(source, store=False)
            assert a.source_path == str(p)
            assert a.function("fib").name == "fib"

    def test_path_reaches_open_binary(self, fib_elf, tmp_path):
        p = tmp_path / "mutatee.elf"
        p.write_bytes(fib_elf)
        with open_binary(p) as edit:
            reason, _, calls = _instrument_and_run(edit)
        assert reason is StopReason.EXITED and calls == 67

    def test_path_threads_into_store_metadata(self, fib_elf, tmp_path):
        p = tmp_path / "mutatee.elf"
        p.write_bytes(fib_elf)
        store = ArtifactStore(tmp_path / "store")
        a = analyze(p, store=store)
        assert store.meta(a.key)["source_paths"] == [str(p)]
        # a second path to the same bytes accumulates, same key
        q = tmp_path / "copy.elf"
        q.write_bytes(fib_elf)
        store.evict(a.key)
        analyze(p, store=store)
        b = analyze(q, store=store)
        assert b.key == a.key

    def test_missing_path_is_clear(self, tmp_path):
        with pytest.raises(ApiError, match="cannot read ELF"):
            analyze(tmp_path / "nope.elf", store=False)

    def test_bad_source_lists_accepted_kinds(self):
        with pytest.raises(ApiError, match=r"bytes, Program, Symtab"):
            analyze(12345, store=False)
        with pytest.raises(ApiError, match=r"ELF path"):
            open_binary(object())


class TestAnalysisObject:
    def test_immutable(self, fib_prog):
        a = analyze(fib_prog, store=False)
        with pytest.raises(AttributeError, match="immutable"):
            a.cfg = None
        with pytest.raises(AttributeError, match="immutable"):
            a.new_field = 1

    def test_liveness_provider_protocol(self, fib_prog):
        a = analyze(fib_prog, store=False)
        fib = a.function("fib")
        res = a.result_for(fib)
        assert res is not None
        assert a.liveness_for(fib) is res

    def test_unknown_function_raises(self, fib_prog):
        a = analyze(fib_prog, store=False)
        with pytest.raises(ApiError, match="no function"):
            a.function("nope")


class TestBinaryEditBorrows:
    def test_edit_borrows_not_copies(self, fib_prog):
        a = analyze(fib_prog, store=False)
        edit = BinaryEdit(a)
        assert edit.analysis is a
        assert edit.cfg is a.cfg
        assert edit.symtab is a.symtab

    def test_shared_analysis_across_sessions(self, fib_prog):
        """N sessions borrow one Analysis; each gets independent patch
        state and identical results."""
        a = analyze(fib_prog, store=False)
        results = []
        for _ in range(3):
            with BinaryEdit(a) as edit:
                results.append(_instrument_and_run(edit))
        assert results[0] == results[1] == results[2]
        assert results[0][0] is StopReason.EXITED
        assert results[0][2] == 67

    def test_session_options_may_differ(self, fib_prog):
        a = analyze(fib_prog, store=False)
        edit = BinaryEdit(a, InstrumentOptions(
            use_dead_registers=False, patch_base=0x4000_0000))
        assert edit._patcher.data_base == 0x4000_0000
        reason, _, calls = _instrument_and_run(edit)
        assert reason is StopReason.EXITED and calls == 67

    def test_analysis_options_must_match(self, fib_prog):
        a = analyze(fib_prog, store=False)
        with pytest.raises(AnalysisMismatchError, match="analyze"):
            BinaryEdit(a, InstrumentOptions(gap_parsing=False))

    def test_open_binary_accepts_analysis(self, fib_prog):
        a = analyze(fib_prog, store=False)
        with open_binary(a) as edit:
            assert edit.analysis is a


class TestWarmEquivalence:
    def test_revived_analysis_is_bit_identical(self, fib_elf, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cold = analyze(fib_elf, store=store)
        with telemetry.enabled() as rec:
            warm = analyze(fib_elf, store=store)
        snap = rec.snapshot()
        assert warm.revived
        assert snap["counters"].get("artifacts.hits") == 1
        assert not any(n.startswith("parse.") for n in snap["spans"])

        with BinaryEdit(cold) as e1, BinaryEdit(warm) as e2:
            assert _instrument_and_run(e1) == _instrument_and_run(e2)

    def test_revived_cfg_matches_structurally(self, fib_elf, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cold = analyze(fib_elf, store=store)
        warm = analyze(fib_elf, store=store)
        for entry, fn in cold.cfg.functions.items():
            wfn = warm.cfg.functions[entry]
            assert wfn.name == fn.name
            assert sorted(wfn.blocks) == sorted(fn.blocks)
            for start, blk in fn.blocks.items():
                wblk = wfn.blocks[start]
                assert len(wblk.insns) == len(blk.insns)
                assert wblk.end == blk.end
        for fn in cold.cfg.functions.values():
            c = cold.result_for(fn)
            w = warm.result_for(warm.cfg.functions[fn.entry])
            for blk in fn.blocks.values():
                for insn in blk.insns:
                    assert c.live_before(insn.address) == \
                        w.live_before(insn.address)

    def test_interproc_revival(self, fib_elf, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        opts = InstrumentOptions(interprocedural_liveness=True)
        cold = analyze(fib_elf, opts, store=store)
        with telemetry.enabled() as rec:
            warm = analyze(fib_elf, opts, store=store)
        assert warm.revived
        counters = rec.snapshot()["counters"]
        assert not any(n.startswith("liveness.") for n in counters)
        with BinaryEdit(cold, opts) as e1, BinaryEdit(warm, opts) as e2:
            assert _instrument_and_run(e1) == _instrument_and_run(e2)
