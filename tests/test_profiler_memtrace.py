"""Tests for the sampling profiler and the memory-access tracer (the
performance-tool scenarios from the paper's §1)."""

import pytest

from repro.api import open_binary
from repro.minicc import compile_source, fib_source, matmul_source
from repro.parse import parse_binary
from repro.proccontrol import Process
from repro.sim import Machine, StopReason
from repro.symtab import Symtab
from repro.tools import profile_process, trace_memory


class TestSamplingProfiler:
    def test_hot_function_dominates(self):
        program = compile_source(matmul_source(10, 6))
        symtab = Symtab.from_program(program)
        cfg = parse_binary(symtab)
        proc = Process.create(symtab)
        prof = profile_process(proc, cfg, quantum=500)
        assert proc.exited
        assert prof.total_samples > 50
        top, _ = prof.flat.most_common(1)[0]
        assert top == "multiply"
        # multiply should own the vast majority of self samples
        assert prof.flat["multiply"] / prof.total_samples > 0.6

    def test_cumulative_includes_callers(self):
        program = compile_source(matmul_source(8, 4))
        symtab = Symtab.from_program(program)
        cfg = parse_binary(symtab)
        proc = Process.create(symtab)
        prof = profile_process(proc, cfg, quantum=400)
        # main sits above multiply on every sample taken inside multiply
        assert prof.cumulative["main"] >= prof.flat["multiply"]
        assert prof.cumulative["_start"] == prof.total_samples

    def test_call_paths_recorded(self):
        program = compile_source(fib_source(16))
        symtab = Symtab.from_program(program)
        cfg = parse_binary(symtab)
        proc = Process.create(symtab)
        prof = profile_process(proc, cfg, quantum=300)
        assert prof.call_paths
        # every path starts at the program entry
        for path in prof.call_paths:
            assert path[0] == "_start"
        # recursion visible: some path contains fib at least twice
        assert any(sum(1 for f in path if f == "fib") >= 2
                   for path in prof.call_paths)

    def test_report_format(self):
        program = compile_source(fib_source(12))
        symtab = Symtab.from_program(program)
        cfg = parse_binary(symtab)
        proc = Process.create(symtab)
        prof = profile_process(proc, cfg, quantum=300)
        text = prof.report()
        assert "samples:" in text and "fib" in text
        assert "->" in text  # call paths

    def test_line_level_attribution(self):
        """With debug info, the hottest source line must be inside the
        innermost loop of multiply."""
        src = matmul_source(10, 4)
        program = compile_source(src)
        symtab = Symtab.from_program(program)
        cfg = parse_binary(symtab)
        proc = Process.create(symtab)
        prof = profile_process(proc, cfg, quantum=400)
        assert prof.line_flat
        (fn, line), _ = prof.line_flat.most_common(1)[0]
        assert fn == "multiply"
        # the inner-loop statement's source text mentions `sum`
        assert "sum" in src.splitlines()[line - 1]

    def test_profiling_does_not_perturb(self):
        program = compile_source(fib_source(10))
        symtab = Symtab.from_program(program)
        m = Machine()
        symtab.load_into(m)
        ev = m.run()
        base_out = bytes(m.stdout)

        cfg = parse_binary(symtab)
        proc = Process.create(symtab)
        profile_process(proc, cfg, quantum=100)
        assert bytes(proc.machine.stdout) == base_out


class TestMemoryTracer:
    SRC = """
long data[8];
long main(void) {
    for (long i = 0; i < 8; i = i + 1) {
        data[i] = i * 3;
    }
    long s = 0;
    for (long i = 0; i < 8; i = i + 1) {
        s = s + data[i];
    }
    return s;
}
"""

    def test_array_addresses_recorded(self):
        program = compile_source(self.SRC)
        binary = open_binary(program)
        handle = trace_memory(binary, ["main"])
        m, ev = binary.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == sum(i * 3 for i in range(8))

        base = binary.symtab.symbol("data").address
        events = handle.read(m)
        array_writes = [e for e in events
                        if e.is_write and base <= e.address < base + 64]
        array_reads = [e for e in events
                       if not e.is_write and base <= e.address < base + 64]
        assert [e.address for e in array_writes] == \
            [base + 8 * i for i in range(8)]
        assert [e.address for e in array_reads] == \
            [base + 8 * i for i in range(8)]

    def test_addresses_match_ground_truth_trace(self):
        """Every traced (pc, address) pair must match what stepping the
        uninstrumented binary observes at the same sites."""
        program = compile_source(self.SRC)
        symtab = Symtab.from_program(program)
        cfg = parse_binary(symtab)
        main = cfg.function_by_name("main")

        # ground truth: step and compute effective addresses
        sites = {}
        for insn in main.instructions():
            acc = insn.memory_access()
            if acc is not None:
                sites[insn.address] = acc
        m = Machine()
        symtab.load_into(m)
        truth = []
        while True:
            pc = m.pc
            if pc in sites:
                acc = sites[pc]
                ea = (m.get_reg(acc.base.number) + acc.displacement) \
                    & 0xFFFFFFFFFFFFFFFF
                truth.append((pc, ea))
            if m.step() is not None:
                break

        binary = open_binary(program)
        handle = trace_memory(binary, ["main"])
        mi, _ = binary.run_instrumented()
        got = [(e.pc, e.address) for e in handle.read(mi)]
        assert got == truth

    def test_loads_only_filter(self):
        program = compile_source(self.SRC)
        binary = open_binary(program)
        handle = trace_memory(binary, ["main"], stores=False)
        m, _ = binary.run_instrumented()
        assert all(not e.is_write for e in handle.read(m))

    def test_sp_relative_accesses_correct_under_spills(self):
        """The sp-adjustment path: with dead registers disabled the
        payload runs inside a spill frame, and sp-based effective
        addresses must still be the mutatee's sp."""
        program = compile_source(self.SRC)

        def collect(use_dead):
            binary = open_binary(program)
            binary._patcher.use_dead_registers = use_dead
            handle = trace_memory(binary, ["main"])
            m, ev = binary.run_instrumented()
            assert ev.reason is StopReason.EXITED
            return [(e.pc, e.address) for e in handle.read(m)]

        assert collect(True) == collect(False)
