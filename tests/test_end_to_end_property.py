"""End-to-end property test: for *random programs*, instrumentation
counts must equal ground truth and must not perturb the computation.

hypothesis generates small MiniC programs (nested loops, branches,
calls, integer arithmetic); each is compiled, parsed, and run twice:

1. uninstrumented, single-stepping, counting true function entries and
   block entries from the pc trace;
2. instrumented (entry counter on every function + block counters),
   at full speed.

The counters must match the trace exactly, and stdout/exit code must be
identical.  This exercises compiler, ELF, parser, liveness, codegen,
patcher, springboards, trampolines, relocation, and simulator in one
property.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source
from repro.patch import PointType
from repro.sim import Machine, StopReason
from repro.symtab import Symtab

from strategies import minic_program


# -- ground truth ----------------------------------------------------------


def _trace_ground_truth(symtab: Symtab, cfg, fn_names, max_steps=300_000):
    entries = {cfg.function_by_name(n).entry: n for n in fn_names}
    block_starts = {}
    for n in fn_names:
        fn = cfg.function_by_name(n)
        for b in fn.blocks.values():
            if b.insns:
                block_starts.setdefault(b.start, []).append(n)

    m = Machine()
    symtab.load_into(m)
    entry_counts = {n: 0 for n in fn_names}
    block_counts = {n: 0 for n in fn_names}
    steps = 0
    while steps < max_steps:
        pc = m.pc
        if pc in entries:
            entry_counts[entries[pc]] += 1
        for n in block_starts.get(pc, ()):
            block_counts[n] += 1
        ev = m.step()
        steps += 1
        if ev is not None:
            assert ev.reason is StopReason.EXITED, ev
            break
    else:
        pytest.fail("trace did not terminate")
    return entry_counts, block_counts, bytes(m.stdout), m.exit_code


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(source=minic_program())
def test_random_program_instrumentation_exact(source):
    _check_program(compile_source(source))


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(source=minic_program())
def test_random_compressed_program_instrumentation_exact(source):
    """The same exactness property over RVC-dense binaries (auto
    compression on): mixed 2/4-byte layouts must not perturb any
    counter."""
    from repro.minicc import Options

    _check_program(compile_source(source, Options(compress=True)))


def _check_program(program):
    symtab = Symtab.from_program(program)

    binary = open_binary(program)
    fn_names = [f"f{i}" for i in range(
        sum(1 for f in binary.functions() if f.name.startswith("f")))]
    fn_names = [n for n in fn_names
                if binary.cfg.function_by_name(n) is not None]

    truth_entries, truth_blocks, truth_out, truth_code = \
        _trace_ground_truth(symtab, binary.cfg, fn_names)

    entry_vars = {}
    block_vars = {}
    for n in fn_names:
        fn = binary.function(n)
        ev_ = binary.allocate_variable(f"e${n}")
        bv = binary.allocate_variable(f"b${n}")
        binary.insert(binary.points(fn, PointType.FUNC_ENTRY),
                      IncrementVar(ev_))
        binary.insert(binary.points(fn, PointType.BLOCK_ENTRY),
                      IncrementVar(bv))
        entry_vars[n] = ev_
        block_vars[n] = bv

    m, stop = binary.run_instrumented(max_steps=2_000_000)
    assert stop.reason is StopReason.EXITED

    # program behaviour unchanged
    assert bytes(m.stdout) == truth_out
    assert stop.exit_code == truth_code

    # counters equal ground truth
    for n in fn_names:
        assert m.mem.read_int(entry_vars[n].address, 8) == \
            truth_entries[n], f"entry count mismatch in {n}"
        assert m.mem.read_int(block_vars[n].address, 8) == \
            truth_blocks[n], f"block count mismatch in {n}"
