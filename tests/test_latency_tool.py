"""Tests for CsrExpr snippets and the self-timing latency tool."""

import pytest

from repro.api import open_binary
from repro.codegen import (
    CSR_CYCLE, CSR_INSTRET, CsrExpr, SetVar, SnippetGenerator, Variable,
)
from repro.minicc import compile_source, fib_source, matmul_source
from repro.riscv import RV64GC, RV64I, lookup
from repro.sim import StopReason
from repro.tools import measure_latency


class TestCsrExpr:
    def test_lowering(self):
        gen = SnippetGenerator(RV64GC, [lookup("t0"), lookup("t1")])
        code = gen.generate(
            SetVar(Variable("v", 0x40_0000), CsrExpr(CSR_CYCLE)))
        mnemonics = [mn for mn, _ in code.instructions]
        assert "csrrs" in mnemonics

    def test_requires_zicsr(self):
        from repro.codegen import ExtensionUnavailable
        gen = SnippetGenerator(RV64I, [lookup("t0"), lookup("t1")])
        with pytest.raises(ExtensionUnavailable):
            gen.generate(SetVar(Variable("v", 0x40_0000),
                                CsrExpr(CSR_INSTRET)))


class TestLatencyTool:
    def test_non_recursive_function(self):
        b = open_binary(compile_source(matmul_source(6, 3)))
        h = measure_latency(b, ["multiply", "init"])
        m, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        report = h.report(m)
        calls, cycles = report["multiply"]
        assert calls == 3
        assert cycles > 0
        # multiply dominates init by far
        assert cycles > report["init"][1]
        # mean latency sanity: inclusive cycles per call within the
        # machine's total budget
        assert h.mean_cycles(m, "multiply") * 3 < m.ucycles / 64 * 1.1

    def test_recursive_function_counts_outermost(self):
        b = open_binary(compile_source(fib_source(10)))
        h = measure_latency(b, ["fib"])
        m, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        calls, cycles = h.report(m)["fib"]
        assert calls == 1  # only the outermost invocation
        assert cycles > 0

    def test_latency_accounts_most_of_hot_function_runtime(self):
        """Measured inclusive cycles for multiply must be close to the
        actual share the simulator charged (within instrumentation
        overhead)."""
        src = compile_source(matmul_source(8, 4))
        base = open_binary(src)
        m0, _ = base.run_instrumented()
        total_cycles = m0.ucycles // 64

        b = open_binary(src)
        h = measure_latency(b, ["multiply"])
        m, _ = b.run_instrumented()
        _, measured = h.report(m)["multiply"]
        # multiply is most of the program: measured inclusive cycles
        # must be a large fraction of the baseline total
        assert measured > 0.5 * total_cycles
        # ...and cannot exceed the instrumented machine's own total
        assert measured <= m.ucycles // 64

    def test_output_unchanged(self):
        src = compile_source(fib_source(9))
        base = open_binary(src)
        m0, _ = base.run_instrumented()
        b = open_binary(src)
        measure_latency(b, ["fib", "main"])
        m, _ = b.run_instrumented()
        assert bytes(m.stdout) == bytes(m0.stdout)
