"""Adversarial validation of the dead-register analysis (§4.3).

The whole point of liveness-driven scratch allocation is that clobbering
a dead register cannot change program behaviour.  These tests weaponise
the instrumentation engine against its own analysis: at every block
entry, *deliberately destroy* every register liveness reports dead —
then check the program's output is bit-identical.

If liveness ever under-approximated (reported a live register dead),
the clobber would corrupt the computation and the test would fail.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.api import open_binary
from repro.codegen import Const, Sequence, SetReg
from repro.dataflow import analyze_liveness
from repro.minicc import (
    Options, compile_source, fib_source, matmul_source, switch_source,
)
from repro.patch import PointType
from repro.sim import StopReason
from strategies import minic_program

GARBAGE = 0x5A5A_DEAD_BEEF_5A5A


def clobber_all_dead(source, opts=None, fn_filter=None):
    """Instrument every block of every (user) function with stores of
    garbage into every dead register; return (base stdout, clobbered
    stdout, number of clobbers inserted)."""
    program = compile_source(source, opts)
    base = open_binary(program)
    m0, ev0 = base.run_instrumented(max_steps=20_000_000)
    assert ev0.reason is StopReason.EXITED

    b = open_binary(program)
    n_clobbers = 0
    for fn in b.functions():
        if fn_filter is not None and not fn_filter(fn.name):
            continue
        lv = analyze_liveness(fn)
        for pt in b.points(fn, PointType.BLOCK_ENTRY):
            dead = lv.dead_before(pt.address)
            # sp/zero are never candidates; SetReg forbids them anyway
            clobbers = [SetReg(r, Const(GARBAGE)) for r in dead]
            if clobbers:
                b.insert(pt, Sequence(clobbers))
                n_clobbers += len(clobbers)
    m1, ev1 = b.run_instrumented(max_steps=40_000_000)
    assert ev1.reason is StopReason.EXITED, ev1
    return (bytes(m0.stdout), ev0.exit_code,
            bytes(m1.stdout), ev1.exit_code, n_clobbers)


class TestDeadRegisterClobbering:
    @pytest.mark.parametrize("source,timing_lines", [
        (fib_source(9), 0),
        (switch_source(15), 0),
        # matmul's first output line is elapsed time, which legitimately
        # grows under instrumentation; the checksum must be unchanged.
        (matmul_source(5, 2), 1),
    ], ids=["fib", "switch", "matmul"])
    def test_clobbering_dead_registers_is_invisible(self, source,
                                                    timing_lines):
        out0, code0, out1, code1, n = clobber_all_dead(source)
        assert n > 0, "liveness found no dead registers anywhere?"
        assert out0.split(b"\n")[timing_lines:] == \
            out1.split(b"\n")[timing_lines:]
        assert code0 == code1

    def test_with_frame_pointer_binaries(self):
        out0, code0, out1, code1, n = clobber_all_dead(
            fib_source(8), opts=Options(use_frame_pointer=True))
        assert n > 0
        assert (out0, code0) == (out1, code1)

    def test_runtime_functions_too(self):
        """print_long's hand-written assembly also has sound liveness."""
        out0, code0, out1, code1, n = clobber_all_dead(
            "long main(void) { print_long(-90210); return 4; }",
            fn_filter=lambda name: name == "print_long")
        assert n > 0
        assert out0 == out1 == b"-90210\n"
        assert code0 == code1 == 4


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(source=minic_program())
def test_clobbering_random_programs(source):
    """PROPERTY: on random programs, destroying every dead register at
    every block entry never changes observable behaviour."""
    out0, code0, out1, code1, _ = clobber_all_dead(
        source, fn_filter=lambda name: name.startswith("f")
        or name == "main")
    assert out0 == out1, source
    assert code0 == code1, source
