"""Assembler <-> disassembler round-trip property.

For every instruction in the spec table: encode random fields, render
with ``disasm()``, feed the text back through the assembler, and decode
— mnemonic and fields must survive.  This pins the two text interfaces
to each other (on top of the binary encode/decode round-trip).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.riscv import assemble, decode
from repro.riscv.encoder import make
from repro.riscv.extensions import ISASubset, RVA23_SUBSET
from repro.riscv.opcodes import all_specs

#: everything the toolkit knows about, so no extension gating interferes
_ALL_EXT = ISASubset(64, frozenset(
    {s.extension for s in all_specs()} | {"c"}))

#: fence pred/succ render numerically but assemble to the full-fence
#: default; rm-bearing text omits the rounding mode — both excluded by
#: constructing with defaults below.
_SKIP = {"fence", "fence.i"}

_SPECS = [s for s in all_specs() if s.mnemonic not in _SKIP]


def _fields_for(spec, data):
    reg = st.integers(0, 31)
    f = {}
    ops = {op if op[0] != "f" else op[1:] for op in spec.operands}
    fmt = spec.fmt
    if "rd" in ops:
        f["rd"] = data.draw(reg)
    if "rs1" in ops:
        f["rs1"] = data.draw(reg)
    if "rs2" in ops:
        f["rs2"] = data.draw(reg)
    if "rs3" in ops:
        f["rs3"] = data.draw(reg)
    if fmt in ("I", "S"):
        f["imm"] = data.draw(st.integers(-2048, 2047))
    elif fmt == "B":
        f["imm"] = data.draw(st.integers(-1024, 1023)) * 2
    elif fmt == "U":
        f["imm"] = data.draw(st.integers(-(1 << 19), (1 << 19) - 1))
    elif fmt == "J":
        f["imm"] = data.draw(st.integers(-(1 << 18), (1 << 18) - 1)) * 2
    elif fmt == "SHIFT64":
        f["shamt"] = data.draw(st.integers(0, 63))
    elif fmt == "SHIFT32":
        f["shamt"] = data.draw(st.integers(0, 31))
    if fmt == "CSR":
        f["csr"] = data.draw(st.integers(0, 4095))
    elif fmt == "CSRI":
        f["csr"] = data.draw(st.integers(0, 4095))
        f["zimm"] = data.draw(st.integers(0, 31))
    return f


@settings(max_examples=10, deadline=None)
@given(data=st.data())
@pytest.mark.parametrize("spec", _SPECS, ids=lambda s: s.mnemonic)
def test_disasm_reassembles(spec, data):
    fields = _fields_for(spec, data)
    insn = make(spec.mnemonic, **fields)
    text = insn.disasm()
    program = assemble(text + "\n", arch=_ALL_EXT)
    back = decode(program.text, 0, 0x1_0000)
    assert back.mnemonic == spec.mnemonic, text
    for key, value in fields.items():
        assert back.fields.get(key) == value, (text, key)
