"""Stress tests: instrument *everything* and verify nothing breaks.

Instrumenting every basic block of every function — including the MiniC
runtime's hand-written assembly (print_long's digit loop, clock_ns) —
exercises relocation of branch-heavy, byte-store-heavy code, entry
points that are also call targets, and large trampoline populations.
Also covers ParamExpr/RetValExpr at entry/exit points.
"""

import pytest

from repro.api import open_binary
from repro.codegen import (
    BinExpr, Const, If, IncrementVar, ParamExpr, RetValExpr,
)
from repro.minicc import compile_source, fib_source, matmul_source
from repro.patch import PointType
from repro.sim import StopReason


def run(binary, max_steps=10_000_000):
    m, ev = binary.run_instrumented(max_steps=max_steps)
    assert ev.reason is StopReason.EXITED, ev
    return m


class TestWholeBinaryInstrumentation:
    def test_every_block_of_every_function(self):
        src = compile_source(matmul_source(5, 2))
        base = open_binary(src)
        m0 = run(base)

        b = open_binary(src)
        total = b.allocate_variable("all_blocks")
        n_points = 0
        for fn in b.functions():
            pts = b.points(fn, PointType.BLOCK_ENTRY)
            b.insert(pts, IncrementVar(total))
            n_points += len(pts)
        assert n_points > 30
        m = run(b)
        assert bytes(m.stdout).split()[1] == bytes(m0.stdout).split()[1]
        # >= 2 * 5^3 inner-loop blocks plus loop/call overhead blocks
        assert m.mem.read_int(total.address, 8) > 500

    def test_runtime_functions_instrumentable(self):
        """print_long's digit loop relocates correctly under entry+exit
        instrumentation."""
        src = compile_source("""
long main(void) {
    print_long(-1234567);
    print_long(0);
    print_long(987654321);
    return 0;
}
""")
        base = open_binary(src)
        m0 = run(base)

        b = open_binary(src)
        c = b.allocate_variable("pl")
        pl = b.function("print_long")
        b.insert(b.points(pl, PointType.BLOCK_ENTRY), IncrementVar(c))
        m = run(b)
        assert bytes(m.stdout) == bytes(m0.stdout) == \
            b"-1234567\n0\n987654321\n"
        assert m.mem.read_int(c.address, 8) > 0

    def test_entries_and_exits_and_edges_together(self):
        src = compile_source(fib_source(9))
        b = open_binary(src)
        fib = b.function("fib")
        ce = b.allocate_variable("e")
        cx = b.allocate_variable("x")
        cb = b.allocate_variable("b")
        b.insert(b.points(fib, PointType.FUNC_ENTRY), IncrementVar(ce))
        for pt in b.points(fib, PointType.FUNC_EXIT):
            b.insert(pt, IncrementVar(cx))
        for pt in b.points(fib, PointType.EDGE_TAKEN):
            b.insert(pt, IncrementVar(cb))
        m = run(b)
        e = m.mem.read_int(ce.address, 8)
        x = m.mem.read_int(cx.address, 8)
        assert e == x == 109
        assert 0 < m.mem.read_int(cb.address, 8) <= e


class TestParamAndRetvalSnippets:
    def test_param_expr_reads_argument(self):
        src = compile_source(fib_source(8))
        b = open_binary(src)
        fib = b.function("fib")
        # sum of all arguments passed to fib
        arg_sum = b.allocate_variable("args")
        from repro.codegen import Sequence, SetVar, VarExpr
        b.insert(b.points(fib, PointType.FUNC_ENTRY),
                 SetVar(arg_sum,
                        BinExpr("add", VarExpr(arg_sum), ParamExpr(0))))
        m = run(b)
        # sum of n over all fib(n) invocations for fib(8):
        # S(n) = n + S(n-1) + S(n-2); S(0)=0, S(1)=1
        def calls(n):
            if n < 2:
                return {n: 1}
            out = {n: 1}
            for sub in (n - 1, n - 2):
                for k, v in calls(sub).items():
                    out[k] = out.get(k, 0) + v
            return out
        expected = sum(k * v for k, v in calls(8).items())
        assert m.mem.read_int(arg_sum.address, 8) == expected

    def test_retval_expr_at_exit(self):
        src = compile_source("""
long square(long x) { return x * x; }
long main(void) {
    long s = 0;
    for (long i = 1; i <= 4; i = i + 1) { s = s + square(i); }
    return s;
}
""")
        b = open_binary(src)
        sq = b.function("square")
        big = b.allocate_variable("big_returns")
        # count returns with value > 5 (i.e. squares of 3 and 4)
        for pt in b.points(sq, PointType.FUNC_EXIT):
            b.insert(pt, If(BinExpr("gt", RetValExpr(), Const(5)),
                            IncrementVar(big)))
        m = run(b)
        assert m.mem.read_int(big.address, 8) == 2

    def test_param_index_bounds(self):
        from repro.codegen import SnippetError
        with pytest.raises(SnippetError):
            ParamExpr(8)
        with pytest.raises(SnippetError):
            ParamExpr(-1)
