"""Every shipped example must run clean — and clean includes warnings.

Each ``examples/*.py`` is executed in a subprocess with
``-W error::DeprecationWarning``: an example that trips a deprecated
code path (e.g. the legacy boolean kwargs the v2 API deprecates) fails
loudly instead of teaching users the old style.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 10


@pytest.mark.parametrize("example", EXAMPLES,
                         ids=lambda p: p.stem)
def test_example_runs_without_deprecation_warnings(example):
    proc = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning",
         str(example)],
        capture_output=True, text=True, timeout=600,
        env={"PYTHONPATH": str(REPO / "src")})
    assert proc.returncode == 0, (
        f"{example.name} failed (rc={proc.returncode}):\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-4000:]}")
