"""Tests for one_time_code: immediate snippet execution in a stopped
process (Dyninst's BPatch oneTimeCode)."""

import pytest

from repro.api import ApiError, one_time_code, open_binary
from repro.codegen import (
    BinExpr, Const, IncrementVar, LoadExpr, RegExpr, SetVar, StoreSnippet,
    Variable,
)
from repro.minicc import compile_source, fib_source
from repro.proccontrol import EventType, Process
from repro.riscv import lookup
from repro.symtab import Symtab


@pytest.fixture
def stopped_process():
    program = compile_source(fib_source(8))
    symtab = Symtab.from_program(program)
    return Process.create(symtab), symtab, program


class TestOneTimeCode:
    def test_expression_evaluation(self, stopped_process):
        proc, _, _ = stopped_process
        assert one_time_code(
            proc, BinExpr("mul", Const(6), RegExpr(lookup("zero")))) == 0
        assert one_time_code(
            proc, BinExpr("add", Const(40), Const(2))) == 42

    def test_reads_live_register_state(self, stopped_process):
        proc, _, _ = stopped_process
        proc.set_register("a3", 1234)
        assert one_time_code(
            proc, BinExpr("add", RegExpr(lookup("a3")), Const(1))) == 1235

    def test_reads_mutatee_memory(self, stopped_process):
        proc, symtab, program = stopped_process
        # read the first 8 bytes of the mutatee's text through a snippet
        value = one_time_code(
            proc, LoadExpr(Const(program.text_base), size=8))
        assert value == int.from_bytes(program.text[:8], "little")

    def test_memory_writes_persist(self, stopped_process):
        proc, _, _ = stopped_process
        # scribble into the mutatee's stack red zone... use a mapped spot
        target = 0x7F00_0000 + 32  # inside the OTC scratch page
        one_time_code(proc, StoreSnippet(Const(target), Const(0x77), size=1))
        assert proc.machine.mem.read_int(target, 1) == 0x77

    def test_register_state_restored(self, stopped_process):
        proc, _, _ = stopped_process
        before_pc = proc.pc
        before_regs = list(proc.machine.x)
        one_time_code(proc, BinExpr("mul", Const(3), Const(9)))
        assert proc.pc == before_pc
        assert proc.machine.x == before_regs

    def test_execution_continues_normally_after(self, stopped_process):
        proc, _, _ = stopped_process
        one_time_code(proc, Const(1))
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        assert bytes(proc.machine.stdout).startswith(b"21\n")

    def test_statement_snippet_returns_none(self, stopped_process):
        proc, _, _ = stopped_process
        var = Variable("v", 0x7F00_0000 + 48)
        assert one_time_code(proc, SetVar(var, Const(5))) is None
        assert proc.machine.mem.read_int(var.address, 8) == 5

    def test_invalid_argument(self, stopped_process):
        proc, _, _ = stopped_process
        with pytest.raises(ApiError):
            one_time_code(proc, "not a snippet")  # type: ignore[arg-type]

    def test_mid_run_inspection(self):
        """The classic use: attach mid-run, compute something about the
        live state, resume."""
        program = compile_source(fib_source(9))
        symtab = Symtab.from_program(program)
        proc = Process.create(symtab)
        from repro.parse import parse_binary
        cfg = parse_binary(symtab)
        fib = cfg.function_by_name("fib")
        proc.insert_breakpoint(fib.entry)
        for _ in range(5):
            proc.continue_to_event()
        # read fib's live argument via a snippet
        arg = one_time_code(proc, RegExpr(lookup("a0")))
        assert 0 <= arg <= 9
        proc.remove_breakpoint(fib.entry)
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
