"""The service resilience layer (docs/SERVICE.md, "Failure modes and
recovery"): typed retryable errors, client reconnect/retry, protocol
hostility, load shedding, request deadlines with journal rollback,
worker supervision, graceful drain, and the escalating shutdown.

The acceptance bar mirrors the chaos harness
(``tools/service_smoke.py --chaos``): failures a client sees are
*retryable* typed errors, never raw ``OSError``\\ s or half-applied
state, and the fleet recovers without losing capacity."""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import struct
import threading
import time

import pytest

from repro import telemetry
from repro.api import open_binary
from repro.codegen.snippets import IncrementVar
from repro.elf.writer import write_program
from repro.faults import FaultPlan, active, plan_from_spec
from repro.minicc import compile_source
from repro.minicc.workloads import fib_source
from repro.patch.points import PointType
from repro.service import (
    RETRYABLE_KINDS, ServiceClient, ServiceError, SessionServer,
)
from repro.service.protocol import recv_message, send_message
from repro.sim.machine import StopReason


@pytest.fixture(scope="module")
def fib_elf():
    return write_program(compile_source(fib_source(8)))


@pytest.fixture(scope="module")
def reference(fib_elf):
    """In-process result the service must reproduce bit-identically."""
    edit = open_binary(fib_elf)
    c = edit.allocate_variable("calls")
    edit.insert(edit.points("fib", PointType.FUNC_ENTRY),
                IncrementVar(c))
    m, ev = edit.run_instrumented()
    assert ev.reason is StopReason.EXITED
    return {"reason": ev.reason.name, "x": list(m.x),
            "calls": edit.read_variable(m, c)}


@pytest.fixture()
def server(tmp_path):
    sock = os.fspath(tmp_path / "svc.sock")
    with SessionServer(sock, store=tmp_path / "store",
                       workers=0) as srv:
        yield srv


def _instrumented_session(client, elf):
    s = client.open(elf)
    s.allocate("calls")
    s.insert("fib", "FUNC_ENTRY", {"kind": "increment", "var": "calls"})
    return s


def _check_result(r, reference):
    assert r["reason"] == reference["reason"]
    assert r["x"] == reference["x"]
    assert r["variables"]["calls"] == reference["calls"]


# -- mini-servers for client-side transport-failure mapping ----------------

class _MiniServer:
    """A raw AF_UNIX listener whose behaviour per accepted connection
    is scripted — the adversarial counterpart the real server never
    is."""

    def __init__(self, tmp_path, behaviours):
        self.path = os.fspath(tmp_path / "mini.sock")
        self._behaviours = list(behaviours)
        self._listener = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
        self._listener.bind(self.path)
        self._listener.listen(8)
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            behaviour = (self._behaviours.pop(0)
                         if self._behaviours else "serve_ping")
            try:
                getattr(self, "_do_" + behaviour)(conn)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _do_close_now(self, conn):
        pass  # accept, then immediately close: EOF before any response

    def _do_read_then_close(self, conn):
        recv_message(conn)

    def _do_torn_response(self, conn):
        recv_message(conn)
        conn.sendall(b"\x00\x00")  # half a length prefix, then EOF

    def _do_never_respond(self, conn):
        recv_message(conn)
        time.sleep(5.0)

    def _do_overloaded_once(self, conn):
        recv_message(conn)
        send_message(conn, {"ok": False, "error": "shed",
                            "kind": "Overloaded", "retryable": True,
                            "retry_after": 0.01, "rid": "mini-1"})

    def _do_serve_ping(self, conn):
        while True:
            req = recv_message(conn)
            if req is None:
                return
            send_message(conn, {"ok": True, "op": req.get("op"),
                                "pid": os.getpid(), "rid": "mini-ok"})

    def close(self):
        try:
            self._listener.close()
        except OSError:
            pass
        os.unlink(self.path)


class TestClientErrorMapping:
    """Satellite: transport failures surface as typed retryable
    ServiceErrors, never raw OSError/socket.timeout."""

    def test_connect_failure_is_typed(self, tmp_path):
        with pytest.raises(ServiceError) as ei:
            ServiceClient(tmp_path / "nonexistent.sock")
        assert ei.value.kind == "ConnectFailed"
        assert ei.value.retryable

    def test_timeout_maps_to_service_timeout(self, tmp_path):
        mini = _MiniServer(tmp_path, ["never_respond"])
        try:
            cl = ServiceClient(mini.path, timeout=0.2, retries=0)
            with pytest.raises(ServiceError) as ei:
                cl.request("ping")
            assert ei.value.kind == "ServiceTimeout"
            assert ei.value.retryable
            assert not isinstance(ei.value, OSError)
        finally:
            mini.close()

    def test_eof_before_response_maps_to_connection_lost(self, tmp_path):
        mini = _MiniServer(tmp_path, ["read_then_close"])
        try:
            cl = ServiceClient(mini.path, timeout=2.0, retries=0)
            with pytest.raises(ServiceError) as ei:
                cl.request("ping")
            assert ei.value.kind == "ConnectionLost"
            assert ei.value.retryable
        finally:
            mini.close()

    def test_torn_response_maps_to_connection_lost(self, tmp_path):
        mini = _MiniServer(tmp_path, ["torn_response"])
        try:
            cl = ServiceClient(mini.path, timeout=2.0, retries=0)
            with pytest.raises(ServiceError) as ei:
                cl.request("ping")
            assert ei.value.kind == "ConnectionLost"
            assert ei.value.retryable
        finally:
            mini.close()

    def test_retryable_taxonomy_is_wired(self):
        for kind in RETRYABLE_KINDS:
            assert ServiceError("x", kind=kind).retryable
        assert not ServiceError("x", kind="ApiError").retryable
        # explicit wire flag wins over the kind table
        assert ServiceError("x", kind="ApiError",
                            retryable=True).retryable


class TestClientRetry:
    def test_idempotent_op_retries_across_reconnects(self, tmp_path):
        # first two connections die before answering; the third serves
        mini = _MiniServer(tmp_path, ["close_now", "read_then_close",
                                      "serve_ping"])
        try:
            cl = ServiceClient(mini.path, timeout=2.0, retries=3,
                               retry_backoff=0.01)
            assert cl.request("ping")["ok"] is True
        finally:
            mini.close()

    def test_overloaded_retry_honours_hint(self, tmp_path):
        mini = _MiniServer(tmp_path, ["overloaded_once"])
        try:
            cl = ServiceClient(mini.path, timeout=2.0, retries=2,
                               retry_backoff=0.01)
            resp = cl.request("ping")
            assert resp["ok"] is True
        finally:
            mini.close()

    def test_session_ops_do_not_auto_retry(self, tmp_path):
        # a lost session op must surface immediately (the session died
        # with its connection; blind re-send would be wrong)
        mini = _MiniServer(tmp_path, ["read_then_close", "serve_ping"])
        try:
            cl = ServiceClient(mini.path, timeout=2.0, retries=5)
            with pytest.raises(ServiceError) as ei:
                cl.request("commit", session="s1")
            assert ei.value.kind == "ConnectionLost"
        finally:
            mini.close()


# -- protocol hostility (satellite: fuzz the framing layer) ----------------

def _raw_connect(path):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(5.0)
    s.connect(path)
    return s


def _expect_dropped(raw):
    """The peer was cut loose: clean EOF, or a reset when the server
    closed with our unread garbage still in its receive buffer."""
    try:
        assert raw.recv(1) == b""
    except ConnectionResetError:
        pass


class TestHostilePeers:
    """Garbage on the socket drops that peer; the worker, its other
    connections, and the listener all live on."""

    def _assert_still_serving(self, srv, fib_elf, reference):
        with ServiceClient(srv.socket_path, timeout=5.0) as cl:
            with _instrumented_session(cl, fib_elf) as s:
                _check_result(s.run(), reference)

    def test_garbage_bytes_drop_peer_only(self, server, fib_elf,
                                          reference):
        raw = _raw_connect(server.socket_path)
        raw.sendall(b"\xde\xad\xbe\xef" * 64)
        _expect_dropped(raw)  # dropped, not answered
        raw.close()
        self._assert_still_serving(server, fib_elf, reference)

    def test_oversized_length_prefix_rejected(self, server, fib_elf,
                                              reference):
        raw = _raw_connect(server.socket_path)
        raw.sendall(struct.pack(">I", 0xFFFFFFFF))
        _expect_dropped(raw)
        raw.close()
        self._assert_still_serving(server, fib_elf, reference)

    def test_zero_length_frame_rejected(self, server, fib_elf,
                                        reference):
        raw = _raw_connect(server.socket_path)
        raw.sendall(struct.pack(">I", 0))  # an empty, non-JSON frame
        _expect_dropped(raw)
        raw.close()
        self._assert_still_serving(server, fib_elf, reference)

    def test_truncated_frame_then_close(self, server, fib_elf,
                                        reference):
        raw = _raw_connect(server.socket_path)
        raw.sendall(struct.pack(">I", 100) + b'{"op":')
        raw.close()  # EOF mid-frame
        self._assert_still_serving(server, fib_elf, reference)

    def test_slowloris_partial_header_times_out(self, tmp_path,
                                                fib_elf, reference):
        sock = os.fspath(tmp_path / "slow.sock")
        rec = telemetry.Recorder()
        with SessionServer(sock, store=tmp_path / "store", workers=0,
                           idle_timeout=0.2) as srv, \
                telemetry.enabled(rec):
            raw = _raw_connect(srv.socket_path)
            raw.sendall(b"\x00\x00")  # half a header, then silence
            t0 = time.monotonic()
            _expect_dropped(raw)  # dropped by the idle timeout
            assert time.monotonic() - t0 < 3.0
            raw.close()
            self._assert_still_serving(srv, fib_elf, reference)
            assert rec.counters().get(
                "service.conn.idle_timeouts", 0) >= 1

    def test_hostile_peer_beside_live_session(self, server, fib_elf,
                                              reference):
        # a session opened before the garbage arrives keeps working
        with ServiceClient(server.socket_path, timeout=5.0) as cl:
            with _instrumented_session(cl, fib_elf) as s:
                raw = _raw_connect(server.socket_path)
                raw.sendall(b"\x00" * 3)
                raw.close()
                _check_result(s.run(), reference)


# -- load shedding ---------------------------------------------------------

class TestLoadShedding:
    def test_connection_cap_sheds_with_hint(self, tmp_path, fib_elf):
        sock = os.fspath(tmp_path / "cap.sock")
        rec = telemetry.Recorder()
        with SessionServer(sock, store=tmp_path / "store", workers=0,
                           max_connections=1) as srv, \
                telemetry.enabled(rec):
            first = ServiceClient(sock, timeout=5.0, retries=0)
            first.ping()  # ensure the connection is fully accepted
            with pytest.raises(ServiceError) as ei:
                ServiceClient(sock, timeout=5.0, retries=0).ping()
            assert ei.value.kind == "Overloaded"
            assert ei.value.retryable
            assert ei.value.retry_after == srv.RETRY_AFTER
            assert rec.counters()["service.shed.connections"] >= 1
            first.close()
            # capacity freed: the next connection is served
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    with ServiceClient(sock, timeout=5.0,
                                       retries=0) as cl:
                        cl.ping()
                    break
                except ServiceError as exc:
                    assert exc.kind == "Overloaded"
                    assert time.monotonic() < deadline, \
                        "connection slot never freed"
                    time.sleep(0.02)

    def test_session_cap_sheds_open(self, tmp_path, fib_elf):
        sock = os.fspath(tmp_path / "scap.sock")
        rec = telemetry.Recorder()
        with SessionServer(sock, store=tmp_path / "store", workers=0,
                           max_sessions=1) as srv, \
                telemetry.enabled(rec):
            with ServiceClient(sock, timeout=5.0, retries=0) as cl:
                s1 = cl.open(fib_elf)
                with pytest.raises(ServiceError) as ei:
                    cl.open(fib_elf)
                assert ei.value.kind == "Overloaded"
                assert ei.value.retryable
                assert ei.value.retry_after is not None
                assert rec.counters()["service.shed.sessions"] >= 1
                s1.close()
                cl.open(fib_elf).close()  # capacity freed


# -- deadlines -------------------------------------------------------------

class TestDeadlines:
    def test_request_deadline_rolls_back_and_session_survives(
            self, tmp_path, fib_elf, reference):
        sock = os.fspath(tmp_path / "dl.sock")
        rec = telemetry.Recorder()
        with SessionServer(sock, store=tmp_path / "store",
                           workers=0) as srv, telemetry.enabled(rec):
            srv.RUN_SLICE = 50  # deadline checks every 50 steps
            with ServiceClient(sock, timeout=10.0) as cl:
                with _instrumented_session(cl, fib_elf) as s:
                    with pytest.raises(ServiceError) as ei:
                        s.run(deadline_ms=0.001)
                    assert ei.value.kind == "DeadlineExceeded"
                    assert ei.value.retryable
                    counters = rec.counters()
                    assert counters["service.deadline.exceeded"] >= 1
                    # the rollback went through the transactional
                    # journal (PR 4's verified bit-identical restore)
                    assert counters["commit.removes"] >= 1
                    # the session survives: an unbounded retry matches
                    # the in-process reference bit-for-bit
                    _check_result(s.run(), reference)

    def test_server_deadline_applies_without_request_field(
            self, tmp_path, fib_elf):
        sock = os.fspath(tmp_path / "dls.sock")
        with SessionServer(sock, store=tmp_path / "store", workers=0,
                           deadline_s=1e-6) as srv:
            srv.RUN_SLICE = 50
            with ServiceClient(sock, timeout=10.0) as cl:
                with _instrumented_session(cl, fib_elf) as s:
                    with pytest.raises(ServiceError) as ei:
                        s.run()
                    assert ei.value.kind == "DeadlineExceeded"

    def test_request_deadline_only_tightens(self, tmp_path, fib_elf):
        # a generous client deadline cannot extend a tight server one
        sock = os.fspath(tmp_path / "dlt.sock")
        with SessionServer(sock, store=tmp_path / "store", workers=0,
                           deadline_s=1e-6) as srv:
            srv.RUN_SLICE = 50
            with ServiceClient(sock, timeout=10.0) as cl:
                with _instrumented_session(cl, fib_elf) as s:
                    with pytest.raises(ServiceError) as ei:
                        s.run(deadline_ms=60_000)
                    assert ei.value.kind == "DeadlineExceeded"

    def test_deadline_path_is_bit_identical_when_in_time(
            self, tmp_path, fib_elf, reference):
        # the sliced executor is the same machine: a run that finishes
        # inside its deadline matches the fast path exactly
        sock = os.fspath(tmp_path / "dlok.sock")
        with SessionServer(sock, store=tmp_path / "store",
                           workers=0) as srv:
            srv.RUN_SLICE = 50  # force many slices
            with ServiceClient(sock, timeout=10.0) as cl:
                with _instrumented_session(cl, fib_elf) as s:
                    _check_result(s.run(deadline_ms=60_000), reference)

    def test_deadline_respects_client_step_bound(self, tmp_path,
                                                 fib_elf):
        sock = os.fspath(tmp_path / "dlms.sock")
        with SessionServer(sock, store=tmp_path / "store",
                           workers=0) as srv:
            srv.RUN_SLICE = 50
            with ServiceClient(sock, timeout=10.0) as cl:
                with _instrumented_session(cl, fib_elf) as s:
                    r = s.run(max_steps=10, deadline_ms=60_000)
                    assert r["reason"] == "STEPS_EXHAUSTED"


# -- fault sites in thread mode (satellite + tentpole chaos sites) ---------

class TestFaultSites:
    def test_commit_fault_is_retryable_and_retry_succeeds(
            self, server, fib_elf, reference):
        with ServiceClient(server.socket_path, timeout=5.0) as cl:
            with _instrumented_session(cl, fib_elf) as s:
                with active(FaultPlan(site="service.commit")):
                    with pytest.raises(ServiceError) as ei:
                        s.commit()
                    assert ei.value.kind == "InjectedFault"
                    assert ei.value.retryable
                    # commit is pure w.r.t. machines: the same session
                    # retries cleanly inside the armed scope (the plan
                    # is spent after one firing)
                    s.commit()
                    _check_result(s.run(), reference)

    def test_conn_drop_fault_tears_response(self, server, fib_elf,
                                            reference):
        with active(FaultPlan(site="service.conn.drop")):
            cl = ServiceClient(server.socket_path, timeout=5.0,
                               retries=0)
            with pytest.raises(ServiceError) as ei:
                cl.ping()
            assert ei.value.kind == "ConnectionLost"
            assert ei.value.retryable
        # the worker lives on; a fresh client is served
        with ServiceClient(server.socket_path, timeout=5.0) as cl:
            with _instrumented_session(cl, fib_elf) as s:
                _check_result(s.run(), reference)

    def test_worker_abort_fault_kills_connection_only(
            self, server, fib_elf, reference):
        with active(FaultPlan(site="service.worker.abort")):
            cl = ServiceClient(server.socket_path, timeout=5.0,
                               retries=0)
            with pytest.raises(ServiceError) as ei:
                cl.ping()
            assert ei.value.kind == "ConnectionLost"
        with ServiceClient(server.socket_path, timeout=5.0) as cl:
            assert cl.ping()["ok"] is True

    def test_plan_from_spec_grammar(self, tmp_path):
        p = plan_from_spec("service.commit")
        assert (p.site, p.occurrence, p.token) == ("service.commit",
                                                   0, None)
        p = plan_from_spec("service.conn.drop@3")
        assert (p.site, p.occurrence) == ("service.conn.drop", 3)
        tok = os.fspath(tmp_path / "tok")
        p = plan_from_spec(f"service.worker.abort@1:{tok}")
        assert (p.site, p.occurrence, p.token) == (
            "service.worker.abort", 1, tok)
        with pytest.raises(ValueError):
            plan_from_spec("@2")
        with pytest.raises(ValueError):
            plan_from_spec("site@notanumber")

    def test_token_makes_a_schedule_fire_once_per_fleet(self, tmp_path):
        from repro.faults import InjectedFault
        tok = os.fspath(tmp_path / "fleet.tok")
        first = FaultPlan(site="x", token=tok)
        with active(first), pytest.raises(InjectedFault):
            from repro import faults
            faults.site("x")
        assert os.path.exists(tok)
        # a second process arming the same spec stays quiet
        second = FaultPlan(site="x", token=tok)
        with active(second):
            from repro import faults
            faults.site("x")  # must not raise
        assert second.fired is not None  # spent without firing


# -- supervision, drain, and shutdown (forked workers) ---------------------

def _healthz(sock):
    with ServiceClient(sock, timeout=5.0, retries=4) as cl:
        return cl.healthz()


def _wait_for_fleet(sock, min_respawns, timeout=15.0):
    deadline = time.monotonic() + timeout
    last = {}
    while time.monotonic() < deadline:
        try:
            resp = _healthz(sock)
        except ServiceError:
            time.sleep(0.1)
            continue
        last = resp.get("supervisor") or {}
        workers = last.get("workers", [])
        if (last.get("respawns_total", 0) >= min_respawns and workers
                and all(w.get("alive") for w in workers)
                and resp.get("healthy")):
            return last
        time.sleep(0.1)
    raise AssertionError(f"fleet never recovered: {last!r}")


@pytest.mark.slow
class TestSupervision:
    def test_kill9_worker_is_respawned_and_capacity_returns(
            self, tmp_path, fib_elf, reference):
        sock = os.fspath(tmp_path / "sup.sock")
        with SessionServer(sock, store=tmp_path / "store",
                           workers=2) as srv:
            fleet = _wait_for_fleet(sock, min_respawns=0)
            victim = fleet["workers"][0]["pid"]
            os.kill(victim, signal.SIGKILL)
            fleet = _wait_for_fleet(sock, min_respawns=1)
            assert fleet["respawns_total"] >= 1
            assert not any(w["pid"] == victim
                           for w in fleet["workers"])
            # the respawned fleet serves full sessions, bit-identical
            with ServiceClient(sock, timeout=10.0) as cl:
                with _instrumented_session(cl, fib_elf) as s:
                    _check_result(s.run(), reference)
        assert not os.path.exists(srv._sup_path)

    def test_supervisor_state_file_is_published(self, tmp_path):
        sock = os.fspath(tmp_path / "state.sock")
        with SessionServer(sock, store=tmp_path / "store",
                           workers=2) as srv:
            with open(srv._sup_path) as f:
                state = json.load(f)
            assert state["schema"] == "repro.service.supervisor/1"
            assert state["supervising"] is True
            assert len(state["workers"]) == 2
            resp = _healthz(sock)
            assert resp["healthy"] is True
            assert resp["supervisor"]["respawns_total"] == 0

    def test_graceful_drain_exits_clean_and_is_respawned(
            self, tmp_path):
        sock = os.fspath(tmp_path / "drain.sock")
        with SessionServer(sock, store=tmp_path / "store", workers=2,
                           drain_timeout=2.0) as srv:
            _wait_for_fleet(sock, min_respawns=0)
            victim = srv._slots[0]["proc"]
            os.kill(victim.pid, signal.SIGTERM)
            victim.join(timeout=5.0)
            assert victim.exitcode == 0  # drained, not killed
            _wait_for_fleet(sock, min_respawns=1)


@pytest.mark.slow
class TestShutdown:
    def test_close_leaves_no_live_children(self, tmp_path):
        # satellite: the teardown escalates terminate -> kill and
        # re-joins, so no zombie workers survive close()
        sock = os.fspath(tmp_path / "down.sock")
        srv = SessionServer(sock, store=tmp_path / "store",
                            workers=2).start()
        procs = [s["proc"] for s in srv._slots]
        assert all(p.is_alive() for p in procs)
        srv.close()
        for p in procs:
            assert not p.is_alive()
            assert p.exitcode is not None  # reaped, not abandoned
        ours = [p for p in multiprocessing.active_children()
                if p.name.startswith("repro-svc")]
        assert ours == []
        assert not os.path.exists(sock)
        assert not os.path.exists(srv._sup_path)

    def test_close_escalates_past_a_stuck_worker(self, tmp_path):
        # a SIGSTOPped worker ignores both drain requests; only the
        # SIGKILL escalation can reap it
        sock = os.fspath(tmp_path / "stuck.sock")
        srv = SessionServer(sock, store=tmp_path / "store", workers=2,
                            drain_timeout=0.3).start()
        stuck = srv._slots[0]["proc"]
        os.kill(stuck.pid, signal.SIGSTOP)
        t0 = time.monotonic()
        srv.close()
        assert time.monotonic() - t0 < 30.0
        assert not stuck.is_alive()
        assert stuck.exitcode == -signal.SIGKILL

    def test_close_is_idempotent(self, tmp_path):
        sock = os.fspath(tmp_path / "twice.sock")
        srv = SessionServer(sock, store=tmp_path / "store",
                            workers=0).start()
        srv.close()
        srv.close()  # must not raise


class TestDrainRefusal:
    def test_draining_thread_server_refuses_new_connections(
            self, tmp_path):
        # workers=0: flip the drain flag directly and check the refuse
        # path — a typed, retryable ShuttingDown frame, then close
        sock = os.fspath(tmp_path / "refuse.sock")
        with SessionServer(sock, store=tmp_path / "store",
                           workers=0) as srv:
            srv._draining = True
            with pytest.raises(ServiceError) as ei:
                ServiceClient(sock, timeout=5.0, retries=0).ping()
            assert ei.value.kind == "ShuttingDown"
            assert ei.value.retryable
            srv._draining = False
            with ServiceClient(sock, timeout=5.0) as cl:
                assert cl.ping()["ok"] is True
