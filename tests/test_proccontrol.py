"""ProcControlAPI tests: process lifecycle, breakpoints, memory masking,
emulated single-step (§3.2.6), dynamic instrumentation of a controlled
process."""

import pytest

from repro.codegen import IncrementVar
from repro.minicc import compile_source, fib_source
from repro.parse import parse_binary
from repro.patch import Patcher, function_entry
from repro.proccontrol import EventType, ProcControlError, Process
from repro.riscv import assemble
from repro.sim import Machine
from repro.symtab import Symtab


def make_process(src_or_c, minic=False, n=6):
    if minic:
        p = compile_source(src_or_c)
    else:
        p = assemble(src_or_c)
    st = Symtab.from_program(p)
    co = parse_binary(st)
    return Process.create(st), st, co


SIMPLE = """
.globl _start
_start:
  li a0, 1
  addi a0, a0, 2
  addi a0, a0, 3
  li a7, 93
  ecall
"""


class TestLifecycle:
    def test_create_stopped_at_entry(self):
        proc, st, _ = make_process(SIMPLE)
        assert proc.pc == st.entry
        assert not proc.exited

    def test_run_to_exit(self):
        proc, _, _ = make_process(SIMPLE)
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        assert ev.exit_code == 6
        assert proc.exited

    def test_continue_after_exit_rejected(self):
        proc, _, _ = make_process(SIMPLE)
        proc.continue_to_event()
        with pytest.raises(ProcControlError):
            proc.continue_to_event()

    def test_attach_to_running_machine(self):
        p = assemble(SIMPLE)
        st = Symtab.from_program(p)
        m = Machine()
        st.load_into(m)
        m.run(max_steps=1)  # partially executed
        proc = Process.attach(m, st)
        assert proc.pc == st.entry + 4
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED


class TestBreakpoints:
    def test_hit_and_resume(self):
        proc, st, _ = make_process(SIMPLE)
        bp_addr = st.entry + 8
        proc.insert_breakpoint(bp_addr)
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        assert ev.pc == bp_addr
        assert proc.get_register("a0") == 3
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        assert ev.exit_code == 6  # breakpointed instruction still ran

    def test_breakpoint_hit_count(self):
        proc, st, co = make_process(fib_source(6), minic=True)
        fib = co.function_by_name("fib")
        bp = proc.insert_breakpoint(fib.entry)
        hits = 0
        while True:
            ev = proc.continue_to_event()
            if ev.type is EventType.EXITED:
                break
            hits += 1
        assert hits == bp.hits == 25  # 2*fib(7)-1

    def test_memory_read_masks_breakpoint_bytes(self):
        proc, st, _ = make_process(SIMPLE)
        addr = st.entry + 4
        original = proc.read_memory(addr, 4)
        proc.insert_breakpoint(addr)
        assert proc.read_memory(addr, 4) == original  # illusion holds
        raw = proc.machine.read_mem(addr, 4)
        assert raw != original  # but the ebreak is really there

    def test_remove_breakpoint_restores(self):
        proc, st, _ = make_process(SIMPLE)
        addr = st.entry + 4
        original = proc.machine.read_mem(addr, 4)
        proc.insert_breakpoint(addr)
        proc.remove_breakpoint(addr)
        assert proc.machine.read_mem(addr, 4) == original
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED

    def test_breakpoint_on_compressed_instruction(self):
        src = """
.globl _start
_start:
  c.li a0, 4
  c.addi a0, 3
  li a7, 93
  ecall
"""
        proc, st, _ = make_process(src)
        proc.insert_breakpoint(st.entry + 2)  # the c.addi
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        assert proc.get_register("a0") == 4
        ev = proc.continue_to_event()
        assert ev.exit_code == 7

    def test_register_write(self):
        proc, st, _ = make_process(SIMPLE)
        proc.insert_breakpoint(st.entry + 4)
        proc.continue_to_event()
        proc.set_register("a0", 100)
        ev = proc.continue_to_event()
        assert ev.exit_code == 105


class TestEmulatedSingleStep:
    """No PTRACE_SINGLESTEP on RISC-V: stepping is breakpoint-emulated."""

    def test_step_sequence(self):
        proc, st, _ = make_process(SIMPLE)
        pcs = [proc.pc]
        for _ in range(3):
            ev = proc.step()
            assert ev.type is EventType.STOPPED_STEP
            pcs.append(proc.pc)
        # li expands to one addi; all instructions are 4 bytes here
        assert pcs == [st.entry + 4 * i for i in range(4)]

    def test_step_through_branch_taken(self):
        src = """
.globl _start
_start:
  li a0, 1
  bnez a0, taken
  li a0, 99
taken:
  li a7, 93
  ecall
"""
        proc, st, _ = make_process(src)
        proc.step()                 # li
        ev = proc.step()            # bnez (taken)
        assert ev.type is EventType.STOPPED_STEP
        assert proc.pc == st.entry + 12  # skipped the li a0, 99

    def test_step_through_jalr(self):
        src = """
.globl _start
_start:
  la t0, hop
  jr t0
hop:
  li a7, 93
  li a0, 5
  ecall
"""
        proc, st, _ = make_process(src)
        proc.step()  # auipc (la part 1)
        proc.step()  # addi (la part 2)
        ev = proc.step()  # jr: successor computed from t0's live value
        assert ev.type is EventType.STOPPED_STEP
        assert proc.pc == st.symbols["hop"].address

    def test_step_does_not_leave_temporaries(self):
        proc, st, _ = make_process(SIMPLE)
        proc.step()
        assert all(not b.temporary for b in proc.breakpoints.values())
        # memory must be pristine
        ev = proc.continue_to_event()
        assert ev.exit_code == 6

    def test_step_into_exit(self):
        proc, _, _ = make_process(SIMPLE)
        for _ in range(4):
            proc.step()
        ev = proc.step()  # the ecall
        assert ev.type is EventType.EXITED
        assert ev.exit_code == 6

    def test_step_through_call_and_return(self):
        proc, st, co = make_process(fib_source(3), minic=True)
        fib = co.function_by_name("fib")
        seen_fib = False
        for _ in range(200):
            ev = proc.step()
            if ev.type is EventType.EXITED:
                break
            if fib.block_at(proc.pc):
                seen_fib = True
        assert seen_fib
        assert ev.type is EventType.EXITED


class TestDynamicInstrumentationOfProcess:
    def test_patch_while_stopped(self):
        """The full dynamic flow: create stopped, instrument, resume."""
        proc, st, co = make_process(fib_source(8), minic=True)
        patcher = Patcher(st, co)
        c = patcher.allocate_var("calls")
        patcher.insert(function_entry(co.function_by_name("fib")),
                       IncrementVar(c))
        patcher.commit().apply_to_machine(proc.machine)
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        assert proc.machine.mem.read_int(c.address, 8) == 67

    def test_attach_mid_run_then_instrument(self):
        """Figure 1's second dynamic form: attach to a running process,
        instrument, continue."""
        p = compile_source(fib_source(8))
        st = Symtab.from_program(p)
        co = parse_binary(st)
        m = Machine()
        st.load_into(m)
        m.run(max_steps=50)  # mid-flight
        proc = Process.attach(m, st)
        patcher = Patcher(st, co)
        c = patcher.allocate_var("calls")
        patcher.insert(function_entry(co.function_by_name("fib")),
                       IncrementVar(c))
        patcher.commit().apply_to_machine(m)
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        # some calls happened before attach: count is positive but <= 67
        n = m.mem.read_int(c.address, 8)
        assert 0 < n <= 67
