"""ELF substrate tests: structs, attributes (ULEB), writer/reader
round-trip, and execution of written ELFs on the simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.elf import (
    AttributesError, EF_RISCV_FLOAT_ABI_DOUBLE, EF_RISCV_RVC, ElfFormatError,
    build_attributes_section, decode_uleb, encode_uleb,
    parse_attributes_section, read_elf, write_program,
)
from repro.riscv import RV64GC, RV64I, assemble

SRC = """
.globl _start
.type _start, @function
_start:
  call compute
  li a7, 93
  ecall
.type compute, @function
compute:
  li a0, 9
  ret
.data
.globl table
.type table, @object
table: .dword 1, 2, 3
.bss
buf: .zero 128
"""


@pytest.fixture
def elf_bytes():
    return write_program(assemble(SRC))


class TestULEB:
    @pytest.mark.parametrize("v", [0, 1, 127, 128, 300, 1 << 20, (1 << 35) + 7])
    def test_roundtrip(self, v):
        blob = encode_uleb(v)
        out, off = decode_uleb(blob, 0)
        assert out == v and off == len(blob)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uleb(-1)

    def test_truncated_rejected(self):
        with pytest.raises(AttributesError):
            decode_uleb(b"\x80", 0)

    @settings(max_examples=200, deadline=None)
    @given(v=st.integers(0, (1 << 60)))
    def test_roundtrip_property(self, v):
        out, _ = decode_uleb(encode_uleb(v), 0)
        assert out == v


class TestAttributes:
    def test_roundtrip_arch_string(self):
        blob = build_attributes_section("rv64imafdc_zicsr2p0_zifencei2p0")
        attrs = parse_attributes_section(blob)
        assert attrs.arch == "rv64imafdc_zicsr2p0_zifencei2p0"
        assert attrs.stack_align == 16

    def test_bad_format_byte(self):
        with pytest.raises(AttributesError):
            parse_attributes_section(b"B\x00\x00\x00\x00")

    def test_other_vendor_ignored(self):
        vendor = b"other\x00"
        sub = (4 + len(vendor)).to_bytes(4, "little") + vendor
        blob = b"A" + sub
        attrs = parse_attributes_section(blob)
        assert attrs.arch is None


class TestWriterReader:
    def test_header_fields(self, elf_bytes):
        elf = read_elf(elf_bytes)
        assert elf.is_riscv
        assert elf.header.e_flags & EF_RISCV_RVC
        assert elf.header.e_flags & EF_RISCV_FLOAT_ABI_DOUBLE
        assert elf.entry == 0x1_0000

    def test_sections_present(self, elf_bytes):
        elf = read_elf(elf_bytes)
        names = {s.name for s in elf.sections}
        assert {".text", ".data", ".bss", ".riscv.attributes",
                ".symtab", ".strtab", ".shstrtab"} <= names

    def test_text_bytes_roundtrip(self, elf_bytes):
        p = assemble(SRC)
        elf = read_elf(elf_bytes)
        assert elf.section(".text").data == p.text
        assert elf.section(".text").addr == p.text_base

    def test_symbols_roundtrip(self, elf_bytes):
        elf = read_elf(elf_bytes)
        by_name = elf.symbols_by_name()
        assert by_name["_start"].st_value == 0x1_0000
        assert by_name["compute"].type == 2  # STT_FUNC
        assert by_name["table"].type == 1    # STT_OBJECT
        funcs = [s.name for s in elf.function_symbols()]
        assert funcs == ["_start", "compute"]

    def test_load_segments(self, elf_bytes):
        elf = read_elf(elf_bytes)
        segs = elf.load_segments()
        assert len(segs) == 3  # text, data, bss
        text = next(s for s in segs if s[3])
        assert text[0] == 0x1_0000

    def test_bss_has_no_file_bytes(self, elf_bytes):
        elf = read_elf(elf_bytes)
        bss = elf.section(".bss")
        assert bss.data == b""
        assert bss.header.sh_size == 128

    def test_truncated_input_rejected(self, elf_bytes):
        with pytest.raises(ElfFormatError):
            read_elf(elf_bytes[:32])

    def test_non_elf_rejected(self):
        with pytest.raises(ElfFormatError):
            read_elf(b"\x00" * 200)

    def test_no_rvc_flag_without_c(self):
        p = assemble("nop\n", arch=RV64I)
        elf = read_elf(write_program(p))
        assert not elf.header.e_flags & EF_RISCV_RVC

    def test_written_elf_runs_on_simulator(self, elf_bytes):
        from repro.sim import Machine, StopReason
        from repro.symtab import Symtab
        symtab = Symtab.from_bytes(elf_bytes)
        m = Machine()
        symtab.load_into(m)
        ev = m.run()
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == 9
