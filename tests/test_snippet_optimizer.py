"""Snippet constant-folding tests (paper §2: Dyninst converts the AST to
native code and "optimizes the code when possible")."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import (
    BinExpr, Const, If, IncrementVar, LoadExpr, Nop, NotExpr, RegExpr,
    Sequence, SetVar, SnippetGenerator, Variable, fold_constants,
    fold_snippet,
)
from repro.riscv import RV64GC, lookup

SCRATCH = [lookup("t0"), lookup("t1"), lookup("t2"), lookup("t3")]
V = Variable("v", 0x40_0000)


def gen(snippet, optimize=True):
    return SnippetGenerator(RV64GC, SCRATCH).generate(snippet, optimize)


class TestExpressionFolding:
    def test_constant_arithmetic(self):
        assert fold_constants(BinExpr("add", Const(2), Const(3))) == Const(5)
        assert fold_constants(BinExpr("mul", Const(6), Const(7))) == Const(42)

    def test_nested_folding(self):
        e = BinExpr("sub", BinExpr("mul", Const(4), Const(5)), Const(8))
        assert fold_constants(e) == Const(12)

    def test_riscv_division_semantics(self):
        # div by zero folds to the architectural -1, like the hardware
        assert fold_constants(BinExpr("div", Const(5), Const(0))) == Const(-1)
        assert fold_constants(BinExpr("rem", Const(5), Const(0))) == Const(5)

    def test_signed_comparisons(self):
        assert fold_constants(BinExpr("lt", Const(-1), Const(0))) == Const(1)
        assert fold_constants(BinExpr("gt", Const(-1), Const(0))) == Const(0)
        assert fold_constants(BinExpr("le", Const(3), Const(3))) == Const(1)

    def test_identities(self):
        r = RegExpr(lookup("a0"))
        assert fold_constants(BinExpr("add", r, Const(0))) is r
        assert fold_constants(BinExpr("mul", r, Const(1))) is r
        assert fold_constants(BinExpr("add", Const(0), r)) is r

    def test_not_folding(self):
        assert fold_constants(NotExpr(Const(0))) == Const(1)
        assert fold_constants(NotExpr(Const(7))) == Const(0)

    def test_non_constant_preserved(self):
        e = BinExpr("add", RegExpr(lookup("a0")), Const(5))
        assert fold_constants(e) == e

    def test_load_address_folded(self):
        e = LoadExpr(BinExpr("add", Const(0x1000), Const(8)))
        assert fold_constants(e) == LoadExpr(Const(0x1008))


class TestSnippetFolding:
    def test_if_true_drops_branch(self):
        s = If(BinExpr("lt", Const(1), Const(2)),
               IncrementVar(V), SetVar(V, Const(0)))
        assert fold_snippet(s) == IncrementVar(V)

    def test_if_false_keeps_else(self):
        s = If(Const(0), IncrementVar(V), SetVar(V, Const(9)))
        assert fold_snippet(s) == SetVar(V, Const(9))

    def test_if_false_no_else_is_nop(self):
        assert fold_snippet(If(Const(0), IncrementVar(V))) == Nop()

    def test_sequence_flattens_nops(self):
        s = Sequence([If(Const(0), IncrementVar(V)), IncrementVar(V)])
        assert fold_snippet(s) == IncrementVar(V)

    def test_empty_sequence_is_nop(self):
        assert fold_snippet(Sequence([If(Const(0), IncrementVar(V))])) \
            == Nop()


class TestCodeSizeEffect:
    def test_folding_shrinks_code(self):
        deep = SetVar(V, BinExpr("add",
                                 BinExpr("mul", Const(3), Const(9)),
                                 BinExpr("shl", Const(1), Const(4))))
        optimized = gen(deep, optimize=True)
        naive = gen(deep, optimize=False)
        assert optimized.size < naive.size

    def test_dead_branch_emits_nothing(self):
        s = If(Const(0), SetVar(V, Const(1)))
        assert gen(s).size == 0


@settings(max_examples=200, deadline=None)
@given(
    op=st.sampled_from(["add", "sub", "mul", "and", "or", "xor",
                        "lt", "le", "gt", "ge", "eq", "ne", "shl",
                        "shr", "div", "rem"]),
    a=st.integers(-(1 << 40), 1 << 40),
    b=st.integers(-(1 << 40), 1 << 40),
)
def test_folding_matches_lowered_execution(op, a, b):
    """PROPERTY: folding BinExpr(op, a, b) gives exactly the value the
    unoptimised lowered code computes on the simulator."""
    from repro.sim import Machine

    if op in ("shl", "shr"):
        b %= 64
    expr = BinExpr(op, Const(a), Const(b))
    folded = fold_constants(expr)
    assert isinstance(folded, Const)

    snippet = SetVar(V, expr)
    code = SnippetGenerator(RV64GC, SCRATCH).generate(
        snippet, optimize=False)
    m = Machine()
    m.mem.map_region(0x30_0000, 0x1000)
    m.mem.map_region(V.address, 0x1000)
    blob = code.encode()
    from repro.riscv import encode
    m.mem.write_bytes(0x30_0000, blob + encode("ebreak").to_bytes(4, "little"))
    m.pc = 0x30_0000
    ev = m.run(max_steps=10_000)
    assert ev.reason.value == "breakpoint"
    from repro.riscv.encoding import to_unsigned
    assert m.mem.read_int(V.address, 8) == to_unsigned(folded.value, 64)
