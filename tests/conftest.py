"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.riscv import RV64GC, Assembler


@pytest.fixture
def assembler() -> Assembler:
    return Assembler(text_base=0x1_0000, arch=RV64GC)
