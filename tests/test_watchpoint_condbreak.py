"""Tests for software watchpoints and conditional breakpoints."""

import pytest

from repro.api import open_binary
from repro.minicc import compile_source, fib_source
from repro.proccontrol import EventType, ProcControlError, Process
from repro.sim import StopReason
from repro.symtab import Symtab
from repro.tools import watch_writes

ARRAY_PROGRAM = """
long cells[8];

long main(void) {
    for (long i = 0; i < 8; i = i + 1) {
        cells[i] = i * i;
    }
    cells[3] = 99;
    return cells[3];
}
"""


class TestWatchpoints:
    def test_watch_catches_all_writes_to_cell(self):
        program = compile_source(ARRAY_PROGRAM)
        b = open_binary(program)
        target = b.symtab.symbol("cells").address + 3 * 8
        h = watch_writes(b, target, ["main"])
        m, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == 99
        hits = h.hits(m)
        # cells[3] written twice: 9 (loop) then 99
        assert [hit.value for hit in hits] == [9, 99]
        assert hits[0].pc != hits[1].pc  # two distinct store sites

    def test_unwatched_address_no_hits(self):
        program = compile_source(ARRAY_PROGRAM)
        b = open_binary(program)
        # watch an address in the array's page but outside it
        target = b.symtab.symbol("cells").address + 64 + 256
        h = watch_writes(b, target, ["main"])
        m, _ = b.run_instrumented()
        assert h.hit_count(m) == 0

    def test_partial_overlap_detected(self):
        """A watch on a *byte* inside an 8-byte store still hits."""
        program = compile_source(ARRAY_PROGRAM)
        b = open_binary(program)
        target = b.symtab.symbol("cells").address + 3 * 8 + 5
        h = watch_writes(b, target, ["main"])
        m, _ = b.run_instrumented()
        assert h.hit_count(m) == 2

    def test_behaviour_unchanged(self):
        program = compile_source(ARRAY_PROGRAM)
        base = open_binary(program)
        m0, ev0 = base.run_instrumented()
        b = open_binary(program)
        watch_writes(b, b.symtab.symbol("cells").address, ["main"])
        m1, ev1 = b.run_instrumented()
        assert ev1.exit_code == ev0.exit_code


class TestConditionalBreakpoints:
    def test_condition_on_argument(self):
        """Classic conditional breakpoint: stop in fib only when the
        argument is exactly 3."""
        program = compile_source(fib_source(8))
        symtab = Symtab.from_program(program)
        from repro.parse import parse_binary
        cfg = parse_binary(symtab)
        proc = Process.create(symtab)
        fib = cfg.function_by_name("fib")
        proc.insert_breakpoint(fib.entry)
        ev = proc.continue_until(
            lambda p, e: p.get_register("a0") == 3)
        assert ev.type is EventType.STOPPED_BREAKPOINT
        assert proc.get_register("a0") == 3

    def test_condition_never_met_returns_exit(self):
        program = compile_source(fib_source(6))
        symtab = Symtab.from_program(program)
        from repro.parse import parse_binary
        cfg = parse_binary(symtab)
        proc = Process.create(symtab)
        fib = cfg.function_by_name("fib")
        proc.insert_breakpoint(fib.entry)
        ev = proc.continue_until(
            lambda p, e: p.get_register("a0") == 999)
        assert ev.type is EventType.EXITED

    def test_event_budget_enforced(self):
        program = compile_source(fib_source(10))
        symtab = Symtab.from_program(program)
        from repro.parse import parse_binary
        cfg = parse_binary(symtab)
        proc = Process.create(symtab)
        proc.insert_breakpoint(cfg.function_by_name("fib").entry)
        with pytest.raises(ProcControlError):
            proc.continue_until(lambda p, e: False, max_events=5)
