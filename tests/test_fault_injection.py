"""The fault-injection matrix: transactional commit, verified rollback,
graceful degradation.

The headline robustness contract — for **every** named injection site
the commit path crosses, a full instrument-run-detach pipeline either
commits completely or rolls the mutatee back to architectural state
bit-identical to a never-instrumented run.  :mod:`repro.faults` makes
the walk deterministic: a recording pass enumerates the site crossings,
then each matrix iteration re-runs the pipeline with exactly one
crossing armed to fail.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import faults, telemetry
from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.errors import ReproError
from repro.faults import FaultPlan, InjectedFault
from repro.minicc import compile_source, fib_source
from repro.patch import PointType
from repro.sim import Machine, StopReason
from repro.sim.machine import InstructionBudgetExceeded
from repro.symtab import Symtab

from strategies import minic_program

FIB_CALLS = 67  # fib(8) entry count, matching the removal tests


@pytest.fixture(scope="module")
def program():
    return compile_source(fib_source(8))


def _machine_state(m: Machine) -> dict:
    """Full architectural snapshot: registers, pc, every memory page,
    trap redirects, executable ranges — the bit-identity oracle."""
    return {
        "pc": m.pc,
        "x": list(m.x),
        "f": list(m.f),
        "pages": {idx: bytes(pg) for idx, pg in m.mem._pages.items()},
        "traps": dict(m.trap_redirects),
        "exec": list(m.exec_ranges),
    }


def _run_to_exit(m: Machine):
    ev = m.run(max_steps=5_000_000)
    assert ev.reason is StopReason.EXITED
    return ev.exit_code, bytes(m.stdout), list(m.x)


@pytest.fixture(scope="module")
def baseline(program):
    """The never-instrumented run: (exit code, stdout, final regs)."""
    m = Machine()
    Symtab.from_program(program).load_into(m)
    return _run_to_exit(m)


def _build(program, plan):
    """The build phase of the pipeline, armed with *plan*: open, queue,
    batch-commit.  Pure with respect to any machine."""
    with faults.active(plan):
        edit = open_binary(program)
        calls = edit.allocate_variable("calls")
        with edit.batch() as b:
            b.insert(b.points("fib", PointType.FUNC_ENTRY),
                     IncrementVar(calls))
        return edit, calls, edit.commit()


class TestFaultInjectionMatrix:
    def test_every_site_commits_or_rolls_back(self, program, baseline):
        # Recording pass: one clean pipeline with the plan armed over
        # the commit phases (build, apply, remove) — not the machine
        # load, not the mutatee run.
        plan = FaultPlan()
        edit, calls, result = _build(program, plan)
        m = Machine()
        edit.symtab.load_into(m)
        with faults.active(plan):
            result.apply_to_machine(m)
        _run_to_exit(m)
        with faults.active(plan):
            result.remove_from_machine(m)
        sites = list(plan.hits)
        assert len(sites) >= 10, f"commit path barely covered: {sites}"
        assert plan.fired is None

        outcomes: Counter = Counter()
        with telemetry.enabled() as rec:
            for k in range(len(sites)):
                self._one_injection(program, baseline, k, outcomes)
        counters = rec.snapshot()["counters"]

        # every phase of the pipeline was actually hit by the matrix
        assert outcomes["build"] > 0, outcomes
        assert outcomes["apply"] > 0, outcomes
        assert outcomes["remove"] > 0, outcomes
        assert outcomes["degraded"] > 0, outcomes  # the pressure site
        # and the telemetry contract: every fault that struck *after*
        # journaling (i.e. with bytes already written) rolled back —
        # faults during journaling itself have nothing to undo; every
        # apply journaled its pre-images; the degradation was counted
        assert counters["commit.rollbacks"] == (
            outcomes["apply"] + outcomes["remove"]
            - outcomes["journal-phase"])
        assert counters["commit.journal_bytes"] > 0
        assert counters["springboard.trap_fallbacks"] >= 1

    def _one_injection(self, program, baseline, k, outcomes):
        plan = FaultPlan(fire_at=k)
        try:
            edit, calls, result = _build(program, plan)
        except InjectedFault:
            # build is pure: a fresh uninstrumented run must be the
            # baseline run
            outcomes["build"] += 1
            m = Machine()
            Symtab.from_program(program).load_into(m)
            assert _run_to_exit(m) == baseline
            return
        m = Machine()
        edit.symtab.load_into(m)
        pristine = _machine_state(m)
        try:
            with faults.active(plan):
                result.apply_to_machine(m)
        except InjectedFault as e:
            # verified rollback: bit-identical to the pre-apply state,
            # and the mutatee then runs exactly like the baseline
            outcomes["apply"] += 1
            if e.site == "patch.txn.journal":
                outcomes["journal-phase"] += 1
            assert _machine_state(m) == pristine
            assert _run_to_exit(m) == baseline
            return
        assert _run_to_exit(m)[:2] == baseline[:2]
        assert m.mem.read_int(calls.address, 8) == FIB_CALLS
        before_remove = _machine_state(m)
        try:
            with faults.active(plan):
                result.remove_from_machine(m)
        except InjectedFault as e:
            # rollback leaves the machine *fully instrumented*; an
            # unarmed retry completes the detach
            outcomes["remove"] += 1
            if e.site == "patch.txn.journal":
                outcomes["journal-phase"] += 1
            assert _machine_state(m) == before_remove
            result.remove_from_machine(m)
        else:
            # no abort anywhere: either a clean pipeline past the armed
            # index (impossible — k < len(sites)) or the pressure site
            # degraded the springboard ladder without failing
            assert plan.fired is not None
            outcomes["degraded"] += 1
        assert m.read_mem(result.text_base, len(result.text)) == \
            bytes(result.original_text)


class TestGracefulDegradation:
    def test_ladder_pressure_falls_back_to_traps(self, program, baseline):
        """Springboard-ladder exhaustion must degrade to the trap tier
        (paper §3.1.2's worst case), not abort the commit."""
        plan = FaultPlan(site="patch.springboard.ladder")
        with telemetry.enabled() as rec:
            edit, calls, result = _build(program, plan)
            m = Machine()
            edit.symtab.load_into(m)
            result.apply_to_machine(m)
            assert _run_to_exit(m)[:2] == baseline[:2]
        assert plan.fired is not None and plan.fired.site == \
            "patch.springboard.ladder"
        assert result.stats.trap_fallbacks >= 1
        assert result.stats.springboards["trap"] >= 1
        assert result.trap_map, "trap tier must use the redirect map"
        assert m.mem.read_int(calls.address, 8) == FIB_CALLS
        counters = rec.snapshot()["counters"]
        assert counters["springboard.trap_fallbacks"] >= 1


class TestSharedSpringboardRemoval:
    def test_removing_overwritten_patch_keeps_survivor(self, program):
        """Removing a patch whose springboard a later patch overwrote
        must not orphan the survivor (the remove-path blind spot)."""
        from repro.patch import Patcher
        from repro.patch.points import function_entry

        symtab = Symtab.from_program(program)
        p1 = Patcher(symtab)
        fib = next(f for f in p1.code_object.functions.values()
                   if f.name == "fib")
        c1 = p1.allocate_var("calls1")
        p1.insert(function_entry(fib), IncrementVar(c1))
        r1 = p1.commit()

        # same site, later patch, disjoint patch area
        p2 = Patcher(symtab, patch_base=p1.trampoline_base + 0x100000)
        fib2 = next(f for f in p2.code_object.functions.values()
                    if f.name == "fib")
        c2 = p2.allocate_var("calls2")
        p2.insert(function_entry(fib2), IncrementVar(c2))
        r2 = p2.commit()

        m = Machine()
        symtab.load_into(m)
        r1.apply_to_machine(m)
        r2.apply_to_machine(m)   # overwrites r1's springboard

        with telemetry.enabled() as rec:
            restored, skipped = r1.remove_from_machine(m)
        assert skipped >= 1, "overwritten span must be skipped"
        counters = rec.snapshot()["counters"]
        assert counters["patch.remove.skipped_spans"] >= 1

        # the survivor still fires
        assert _run_to_exit(m)[0] is not None
        assert m.mem.read_int(c2.address, 8) == FIB_CALLS
        # and removing the survivor restores the pristine text
        r2.remove_from_machine(m)
        assert m.read_mem(r2.text_base, len(r2.text)) == \
            bytes(r2.original_text)


class TestInstructionBudget:
    def test_budget_raises_catchable_repro_error(self, program):
        m = Machine()
        Symtab.from_program(program).load_into(m)
        with pytest.raises(ReproError) as exc_info:
            m.run(max_instructions=100)
        e = exc_info.value
        assert isinstance(e, InstructionBudgetExceeded)
        assert e.budget == 100
        assert e.retired == 100

    def test_budget_does_not_shadow_max_steps(self, program):
        """A *larger* budget must let the cooperative max_steps bound
        return its normal STEPS_EXHAUSTED stop event."""
        m = Machine()
        Symtab.from_program(program).load_into(m)
        ev = m.run(max_steps=50, max_instructions=100)
        assert ev.reason is StopReason.STEPS_EXHAUSTED

    def test_budget_flushes_trace_session(self, program):
        """Exceeding the budget under trace() must not lose the events
        captured so far: the partial session rides on the exception."""
        edit = open_binary(program)
        calls = edit.allocate_variable("calls")
        edit.insert(edit.points("fib", PointType.FUNC_ENTRY),
                    IncrementVar(calls))
        with pytest.raises(InstructionBudgetExceeded) as exc_info:
            edit.trace(max_instructions=200)
        session = exc_info.value.session
        assert session.stop.reason is StopReason.FAULT
        events = list(session.stream.events())
        assert events, "flushed session must carry the partial stream"
        from repro.telemetry.events import FAULT
        assert events[-1][0] == FAULT


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_random_fault_rollback_property(data):
    """PROPERTY: for a random MiniC program, a random patch set, and a
    random single-site fault during apply, the post-rollback register
    file and memory pages equal the pristine baseline."""
    src = data.draw(minic_program())
    program = compile_source(src)
    edit = open_binary(program)
    counter = edit.allocate_variable("hits")
    names = sorted(fn.name for fn in edit.functions()
                   if fn.name and fn.name != "_start")
    chosen = data.draw(st.lists(st.sampled_from(names), min_size=1,
                                max_size=len(names), unique=True))
    queued = False
    for name in chosen:
        points = edit.points(name, PointType.FUNC_ENTRY)
        if points:
            edit.insert(points, IncrementVar(counter))
            queued = True
    if not queued:
        return
    result = edit.commit()

    # enumerate the apply-phase crossings on a scratch machine
    scratch = Machine()
    edit.symtab.load_into(scratch)
    sites = faults.enumerate_sites(
        lambda: result.apply_to_machine(scratch))
    assert sites

    k = data.draw(st.integers(0, len(sites) - 1))
    m = Machine()
    edit.symtab.load_into(m)
    pristine = _machine_state(m)
    with pytest.raises(InjectedFault):
        with faults.active(FaultPlan(fire_at=k)):
            result.apply_to_machine(m)
    post = _machine_state(m)
    assert post["x"] == pristine["x"]
    assert post["f"] == pristine["f"]
    assert post["pages"] == pristine["pages"]
    assert post == pristine
