"""InstructionAPI totality: for any decodable word, every query on the
Insn wrapper must succeed (no instruction may crash operand/category/
memory-access introspection — tools call these on arbitrary binaries)."""

from hypothesis import given, settings, strategies as st

from repro.instruction import Insn, InsnCategory
from repro.riscv import DecodeError, decode


@settings(max_examples=500, deadline=None)
@given(raw=st.binary(min_size=4, max_size=4))
def test_insn_queries_total_over_random_words(raw):
    try:
        insn = Insn(decode(raw, 0, 0x1_0000), 0x1_0000)
    except DecodeError:
        return
    # every introspection path must run without raising
    assert isinstance(insn.category, InsnCategory)
    ops = insn.operands()
    for op in ops:
        assert isinstance(op.is_read, bool)
    rs, ws = insn.read_set(), insn.write_set()
    assert all(r.number < 32 for r in rs | ws)
    acc = insn.memory_access()
    if acc is not None:
        assert acc.size in (1, 2, 4, 8)
    _ = insn.writes_pc
    _ = insn.direct_target()
    _ = insn.link_register
    _ = insn.disasm()
    assert insn.next_address == 0x1_0000 + insn.length


@settings(max_examples=500, deadline=None)
@given(hw=st.integers(0, 0xFFFF))
def test_insn_queries_total_over_compressed(hw):
    raw = hw.to_bytes(2, "little") + b"\x00\x00"
    try:
        insn = Insn(decode(raw, 0, 0x1_0000), 0x1_0000)
    except DecodeError:
        return
    _ = insn.category
    _ = insn.operands()
    _ = insn.read_set()
    _ = insn.write_set()
    _ = insn.memory_access()
    _ = insn.disasm()
