"""Workload-suite integration: the full toolkit against each workload
class (recursive sort, FP kernel, bit-twiddling, switch dispatch),
plain and RVC-dense — instrumentation exactness checked against
single-step ground truth everywhere."""

import pytest

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import (
    Options, compile_source, crc_source, linked_list_source,
    nbody_source, qsort_source, switch_source,
)
from repro.patch import PointType
from repro.proccontrol import Process
from repro.sim import Machine, StopReason
from repro.symtab import Symtab
from repro.parse import parse_binary
from repro.tools import count_basic_blocks, profile_process

WORKLOADS = {
    "list": (linked_list_source(24), "sum_list"),
    "qsort": (qsort_source(32), "qsort_range"),
    "nbody": (nbody_source(3, 6), "step"),
    "crc": (crc_source(64, 2), "checksum"),
    "switch": (switch_source(40), "dispatch"),
}


def _ground_truth_blocks(symtab, cfg, fn_name, max_steps=3_000_000):
    fn = cfg.function_by_name(fn_name)
    starts = {b.start for b in fn.blocks.values() if b.insns}
    m = Machine()
    symtab.load_into(m)
    count = 0
    for _ in range(max_steps):
        if m.pc in starts:
            count += 1
        if m.step() is not None:
            break
    return count, bytes(m.stdout)


@pytest.mark.parametrize("name", sorted(WORKLOADS), ids=str)
@pytest.mark.parametrize("compress", [False, True],
                         ids=["plain", "rvc"])
def test_block_counts_exact(name, compress):
    src, hot = WORKLOADS[name]
    program = compile_source(
        src, Options(compress=True) if compress else None)
    symtab = Symtab.from_program(program)
    cfg = parse_binary(symtab)
    truth, base_out = _ground_truth_blocks(symtab, cfg, hot)
    assert truth > 0

    b = open_binary(program)
    h = count_basic_blocks(b, hot)
    m, ev = b.run_instrumented(max_steps=10_000_000)
    assert ev.reason is StopReason.EXITED
    assert bytes(m.stdout) == base_out
    assert h.read(m) == truth


def test_profiler_on_qsort():
    program = compile_source(qsort_source(48))
    symtab = Symtab.from_program(program)
    cfg = parse_binary(symtab)
    proc = Process.create(symtab)
    prof = profile_process(proc, cfg, quantum=300)
    hot = {name for name, _ in prof.flat.most_common(2)}
    assert hot & {"partition", "qsort_range"}


def test_nbody_fp_instrumentation_preserves_math():
    """FP-heavy trampolining: relocated fld/fsd/fmul sequences must not
    disturb double-precision results."""
    src = nbody_source(4, 10)
    base = open_binary(compile_source(src))
    m0, _ = base.run_instrumented(max_steps=10_000_000)

    b = open_binary(compile_source(src))
    for fn in ("init", "step", "main"):
        c = b.allocate_variable(f"c${fn}")
        for pt in b.points(fn, PointType.BLOCK_ENTRY):
            b.insert(pt, IncrementVar(c))
    m1, ev = b.run_instrumented(max_steps=20_000_000)
    assert ev.reason is StopReason.EXITED
    assert bytes(m1.stdout) == bytes(m0.stdout)  # bit-exact checksum
