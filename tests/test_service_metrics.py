"""The service observability plane: snapshot merge + exposition,
request tracing (ids, trace context, per-op latency histograms, the
slow-request ring, structured logs), cross-worker aggregation through
atomic flush files, and the metrics/healthz protocol ops.

The acceptance bar: a ``metrics`` op against a server with >= 2 forked
workers returns counters equal to the sum of the per-worker snapshots,
with bucket-wise-merged latency histograms."""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro import telemetry
from repro.elf.writer import write_program
from repro.minicc import compile_source
from repro.minicc.workloads import fib_source
from repro.service import ServiceClient, ServiceError, SessionServer
from repro.telemetry.aggregate import (
    FLUSH_PREFIX, merge_histograms, merge_snapshots, parse_prometheus,
    read_worker_snapshots, to_prometheus, write_worker_snapshot,
)
from repro.telemetry.report import percentiles
from repro.tools.repro_top import render


@pytest.fixture(scope="module")
def fib_elf():
    return write_program(compile_source(fib_source(8)))


@pytest.fixture()
def observed_server(fib_elf, tmp_path):
    """workers=0 server with the metrics plane armed.  The in-thread
    server installs a process-wide Recorder; restore the null recorder
    afterwards so other tests stay unobserved."""
    sock = os.fspath(tmp_path / "svc.sock")
    try:
        with SessionServer(sock, store=tmp_path / "store", workers=0,
                           metrics_dir=tmp_path / "metrics",
                           flush_interval=0.2) as srv:
            yield srv
    finally:
        telemetry.disable()


def _session_cycle(client, elf):
    with client.open(elf) as s:
        s.allocate("calls")
        s.insert("fib", "FUNC_ENTRY",
                 {"kind": "increment", "var": "calls"})
        return s.run()


class TestMerge:
    def test_counters_sum(self):
        merged = merge_snapshots([
            {"counters": {"a": 1, "b": 2}},
            {"counters": {"a": 3, "c": 4}},
        ])
        assert merged["counters"] == {"a": 4, "b": 2, "c": 4}

    def test_gauges_last_write_wins(self):
        merged = merge_snapshots([
            {"gauges": {"g": 1.0, "h": 9.0}},
            {"gauges": {"g": 2.5}},
        ])
        assert merged["gauges"] == {"g": 2.5, "h": 9.0}

    def test_spans_combine(self):
        merged = merge_snapshots([
            {"spans": {"s": {"count": 2, "total_s": 1.0,
                             "min_s": 0.25, "max_s": 0.75}}},
            {"spans": {"s": {"count": 1, "total_s": 2.0,
                             "min_s": 2.0, "max_s": 2.0}}},
        ])
        s = merged["spans"]["s"]
        assert s == {"count": 3, "total_s": 3.0,
                     "min_s": 0.25, "max_s": 2.0}

    def test_histograms_merge_bucket_wise(self):
        def snap_of(values):
            rec = telemetry.Recorder()
            for v in values:
                rec.observe("h", v)
            return rec.snapshot()

        a, b = snap_of([1, 2, 3]), snap_of([100, 200])
        merged = merge_snapshots([a, b])
        h = merged["histograms"]["h"]
        reference = snap_of([1, 2, 3, 100, 200])["histograms"]["h"]
        assert h == reference  # bucket-wise merge is exact

    def test_merge_histograms_identity_and_disjoint(self):
        assert merge_histograms({}, {}) == {}
        h = {"count": 1, "sum": 4, "min": 4, "max": 4,
             "buckets": {"le_2^3": 1}}
        assert merge_histograms({}, h) == h
        assert merge_histograms(h, {}) == h
        other = {"count": 2, "sum": 512, "min": 256, "max": 256,
                 "buckets": {"le_2^9": 2}}
        m = merge_histograms(h, other)
        assert m["count"] == 3
        assert m["buckets"] == {"le_2^3": 1, "le_2^9": 2}

    def test_merged_percentiles_are_usable(self):
        rec = telemetry.Recorder()
        for v in (10, 20, 1000, 2000, 4000):
            rec.observe("lat", v)
        merged = merge_snapshots([rec.snapshot(), rec.snapshot()])
        pct = percentiles(merged["histograms"]["lat"])
        assert pct["p50"] <= pct["p90"] <= pct["p99"]
        assert pct["p99"] <= 4000

    def test_disabled_and_garbage_snapshots_contribute_nothing(self):
        merged = merge_snapshots([
            None, 17, {"counters": {"a": 1}}, {}])
        assert merged["counters"] == {"a": 1}


class TestExposition:
    def test_round_trip_parses(self):
        rec = telemetry.Recorder()
        rec.count("service.op.open", 3)
        rec.gauge("service.sessions.live", 2.0)
        with rec.span("artifacts.revive"):
            pass
        for v in (5, 9, 1000):
            rec.observe("service.op.run.us", v)
        text = to_prometheus(rec.snapshot())
        series = parse_prometheus(text)
        assert series["repro_service_op_open"] == 3
        assert series["repro_service_sessions_live"] == 2.0
        assert series["repro_artifacts_revive_count"] == 1
        assert series["repro_service_op_run_us_count"] == 3
        assert series['repro_service_op_run_us_bucket{le="+Inf"}'] == 3

    def test_histogram_buckets_are_cumulative(self):
        rec = telemetry.Recorder()
        for v in (1, 2, 3, 100):
            rec.observe("h", v)
        series = parse_prometheus(to_prometheus(rec.snapshot()))
        buckets = sorted(
            (float(k.split('le="')[1].rstrip('"}')), v)
            for k, v in series.items()
            if k.startswith("repro_h_bucket") and "+Inf" not in k)
        counts = [v for _, v in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert counts[-1] == 4

    def test_malformed_exposition_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus("just_a_name_no_value")


class TestRequestTracing:
    def test_every_response_carries_a_rid(self, observed_server):
        with ServiceClient(observed_server.socket_path) as cl:
            cl.ping()
            first = cl.last_rid
            cl.ping()
            assert first.startswith("w0-")
            assert cl.last_rid != first

    def test_trace_context_is_echoed(self, observed_server):
        with ServiceClient(observed_server.socket_path,
                           trace="tenant-42") as cl:
            resp = cl.ping()
            assert resp["trace"] == "tenant-42"

    def test_unknown_op_counter_cardinality_is_bounded(
            self, observed_server):
        """Garbage op names must not mint per-name counters — one
        shared ``service.op.unknown`` and nothing else."""
        with ServiceClient(observed_server.socket_path) as cl:
            for bad in ("frobnicate", "p0wn", "open2"):
                with pytest.raises(ServiceError, match="unknown op"):
                    cl.request(bad)
            counters = cl.metrics()["merged"]["counters"]
        assert counters["service.op.unknown"] == 3
        assert not any("frobnicate" in n or "p0wn" in n or "open2" in n
                       for n in counters)

    def test_op_latency_lands_in_pow2_histograms(self, observed_server,
                                                 fib_elf):
        with ServiceClient(observed_server.socket_path) as cl:
            _session_cycle(cl, fib_elf)
            hists = cl.metrics()["merged"]["histograms"]
        for op in ("open", "run", "close"):
            h = hists[f"service.op.{op}.us"]
            assert h["count"] >= 1
            assert h["buckets"]
            pct = percentiles(h)
            assert pct["p50"] <= pct["p99"]

    def test_errors_are_counted(self, observed_server):
        with ServiceClient(observed_server.socket_path) as cl:
            with pytest.raises(ServiceError):
                cl.request("commit", session="s999")
            counters = cl.metrics()["merged"]["counters"]
        assert counters.get("service.errors", 0) >= 1


class TestSlowRing:
    def test_slow_requests_recorded_with_counter_deltas(
            self, fib_elf, tmp_path):
        sock = os.fspath(tmp_path / "svc.sock")
        try:
            with SessionServer(sock, store=tmp_path / "store",
                               workers=0,
                               metrics_dir=tmp_path / "metrics",
                               slow_threshold_us=0.0) as srv:
                with ServiceClient(sock, trace="slowtest") as cl:
                    _session_cycle(cl, fib_elf)
                    slow = cl.metrics()["slow"]
        finally:
            telemetry.disable()
        assert slow, "threshold 0 must catch every request"
        by_op = {e["op"]: e for e in slow}
        assert "open" in by_op and "run" in by_op
        open_entry = by_op["open"]
        assert open_entry["rid"].startswith("w0-")
        assert open_entry["trace"] == "slowtest"
        assert open_entry["duration_us"] > 0
        # the open's span links to the pipeline telemetry it caused:
        # a cold open parses, so parse.* counters moved under it
        assert any(n.startswith("parse.")
                   for n in open_entry["counters_delta"])
        # ring order: slowest first
        durations = [e["duration_us"] for e in slow]
        assert durations == sorted(durations, reverse=True)

    def test_ring_is_bounded(self, fib_elf, tmp_path):
        sock = os.fspath(tmp_path / "svc.sock")
        try:
            with SessionServer(sock, store=tmp_path / "store",
                               workers=0,
                               metrics_dir=tmp_path / "metrics",
                               slow_threshold_us=0.0) as srv:
                with ServiceClient(sock) as cl:
                    for _ in range(SessionServer.SLOW_RING + 40):
                        cl.ping()
                    slow = cl.metrics()["slow"]
        finally:
            telemetry.disable()
        assert len(slow) <= SessionServer.SLOW_RING


class TestStructuredLog:
    def test_json_lines_with_rid_op_duration(self, tmp_path):
        sock = os.fspath(tmp_path / "svc.sock")
        log = tmp_path / "svc.log"
        with SessionServer(sock, store=tmp_path / "store", workers=0,
                           log=log) as srv:
            with ServiceClient(sock, trace="logtest") as cl:
                cl.ping()
                with pytest.raises(ServiceError):
                    cl.request("frobnicate")
        lines = [json.loads(line)
                 for line in log.read_text().splitlines()]
        assert len(lines) == 2
        ping, bad = lines
        assert ping["op"] == "ping" and ping["ok"] is True
        assert ping["rid"].startswith("w0-")
        assert ping["trace"] == "logtest"
        assert ping["duration_us"] >= 0
        assert bad["op"] == "unknown" and bad["ok"] is False
        assert bad["error"] == "ProtocolError"


class TestStatsHonesty:
    def test_stats_is_scoped_and_carries_telemetry(
            self, observed_server, fib_elf):
        with ServiceClient(observed_server.socket_path) as cl:
            _session_cycle(cl, fib_elf)
            stats = cl.stats()
        assert stats["scope"] == "worker"
        snap = stats["telemetry"]
        assert snap["enabled"] is True
        assert snap["counters"]["service.op.open"] >= 1

    def test_stats_without_metrics_plane_still_works(self, fib_elf,
                                                     tmp_path):
        sock = os.fspath(tmp_path / "svc.sock")
        with SessionServer(sock, store=tmp_path / "store",
                           workers=0) as srv:
            with ServiceClient(sock) as cl:
                stats = cl.stats()
        assert stats["scope"] == "worker"
        # unobserved server: the null recorder's empty snapshot
        assert stats["telemetry"]["enabled"] is False


class TestMetricsOp:
    def test_merged_equals_sum_of_workers_in_thread(
            self, observed_server, fib_elf):
        with ServiceClient(observed_server.socket_path) as cl:
            for _ in range(3):
                _session_cycle(cl, fib_elf)
            resp = cl.metrics()
        merged = resp["merged"]["counters"]
        assert merged["service.op.open"] == 3
        assert merged["service.op.run"] == 3
        by_workers: dict[str, int] = {}
        for w in resp["workers"]:
            for name, n in w["snapshot"]["counters"].items():
                by_workers[name] = by_workers.get(name, 0) + n
        for name, total in merged.items():
            assert by_workers.get(name) == total, name
        series = parse_prometheus(resp["exposition"])
        assert series["repro_service_op_open"] == 3

    def test_healthz_in_thread(self, observed_server):
        with ServiceClient(observed_server.socket_path) as cl:
            h = cl.healthz()
        assert h["healthy"] is True
        assert h["uptime_s"] >= 0
        assert any(w["pid"] == os.getpid() for w in h["workers"])

    def test_metrics_without_metrics_dir_reports_own_worker(
            self, fib_elf, tmp_path):
        sock = os.fspath(tmp_path / "svc.sock")
        with SessionServer(sock, store=tmp_path / "store",
                           workers=0) as srv:
            with ServiceClient(sock) as cl, \
                    telemetry.enabled():
                _session_cycle(cl, fib_elf)
                resp = cl.metrics()
        assert len(resp["workers"]) == 1
        assert resp["merged"]["counters"]["service.op.open"] == 1


class TestCrossWorkerAggregation:
    """The acceptance criterion: >= 2 forked workers, merged counters
    equal to the sum of the per-worker snapshots."""

    CLIENTS = 8

    def test_forked_fleet_aggregation(self, fib_elf, tmp_path):
        import threading

        sock = os.fspath(tmp_path / "mp.sock")
        metrics_dir = tmp_path / "metrics"
        with SessionServer(sock, store=tmp_path / "store", workers=2,
                           metrics_dir=metrics_dir,
                           flush_interval=0.2) as srv:
            errors = []

            def one():
                try:
                    with ServiceClient(sock) as cl:
                        _session_cycle(cl, fib_elf)
                except Exception as exc:  # noqa: BLE001 — surfaced
                    errors.append(repr(exc))

            threads = [threading.Thread(target=one)
                       for _ in range(self.CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            # let every worker's periodic flusher publish the final
            # state of the traffic burst
            time.sleep(1.0)
            with ServiceClient(sock) as cl:
                resp = cl.metrics()
                health = cl.healthz()

        files = list(metrics_dir.glob(f"{FLUSH_PREFIX}*.json"))
        assert len(files) >= 2, "each forked worker must flush"
        assert len(resp["workers"]) >= 2
        merged = resp["merged"]["counters"]
        assert merged["service.op.open"] == self.CLIENTS
        assert merged["service.op.run"] == self.CLIENTS
        assert merged["service.sessions"] == self.CLIENTS
        by_workers: dict[str, int] = {}
        for w in resp["workers"]:
            for name, n in w["snapshot"]["counters"].items():
                by_workers[name] = by_workers.get(name, 0) + n
        for name, total in merged.items():
            assert by_workers.get(name) == total, name
        # bucket-wise merged latency histograms, per op
        hists = resp["merged"]["histograms"]
        h = hists["service.op.open.us"]
        assert h["count"] == self.CLIENTS
        pct = percentiles(h)
        assert 0 < pct["p50"] <= pct["p90"] <= pct["p99"]
        series = parse_prometheus(resp["exposition"])
        assert series["repro_service_op_open"] == self.CLIENTS
        # healthz saw the whole fleet alive
        alive = [w for w in health["workers"] if w["alive"]]
        assert len(alive) >= 2 and health["healthy"]

    def test_stale_flush_files_cleared_on_start(self, tmp_path):
        metrics_dir = tmp_path / "metrics"
        metrics_dir.mkdir()
        stale = metrics_dir / f"{FLUSH_PREFIX}99999.json"
        stale.write_text("{}")
        sock = os.fspath(tmp_path / "svc.sock")
        try:
            with SessionServer(sock, workers=0,
                               metrics_dir=metrics_dir,
                               store=tmp_path / "store") as srv:
                with ServiceClient(sock) as cl:
                    resp = cl.metrics()
        finally:
            telemetry.disable()
        assert not stale.exists()
        assert all(w["pid"] == os.getpid() for w in resp["workers"])


class TestReproTop:
    def test_render_one_frame(self, observed_server, fib_elf):
        with ServiceClient(observed_server.socket_path) as cl:
            _session_cycle(cl, fib_elf)
            resp = cl.metrics()
        frame = render(resp)
        assert "repro_top" in frame
        assert "open" in frame and "run" in frame
        assert "p50(us)" in frame
        assert "caches: artifacts" in frame

    def test_render_rates_from_two_frames(self, observed_server,
                                          fib_elf):
        with ServiceClient(observed_server.socket_path) as cl:
            prev = cl.metrics()
            _session_cycle(cl, fib_elf)
            resp = cl.metrics()
        frame = render(resp, prev, dt=2.0)
        assert "req/s" in frame

    def test_render_empty_metrics(self):
        frame = render({"merged": {}, "workers": [], "slow": []})
        assert "no per-op latency histograms" in frame


def _flush_writer_main(root, writer_id, rounds):
    blob = chr(ord("a") + writer_id) * 20_000
    for seq in range(rounds):
        write_worker_snapshot(
            root, worker_id=writer_id,
            snapshot={"counters": {"seq": seq}, "blob": blob},
            sessions=writer_id, pid=424242)  # all hammer ONE file


class TestConcurrentFlushes:
    """Worker snapshot flushes follow the artifact store's atomic-
    rename/no-torn-read discipline (the tests/test_artifacts.py
    concurrent-writer fuzz pattern, pointed at one flush file)."""

    WRITERS = 4
    ROUNDS = 30

    def test_no_torn_reads_last_writer_wins(self, tmp_path):
        root = tmp_path / "metrics"
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_flush_writer_main,
                             args=(os.fspath(root), i, self.ROUNDS))
                 for i in range(self.WRITERS)]
        for p in procs:
            p.start()
        observed = 0
        try:
            while any(p.is_alive() for p in procs):
                for rec in read_worker_snapshots(root):
                    observed += 1
                    expect = chr(ord("a") + rec["worker"]) * 20_000
                    assert rec["snapshot"]["blob"] == expect, \
                        "torn read"
        finally:
            for p in procs:
                p.join()
        assert all(p.exitcode == 0 for p in procs)
        final = read_worker_snapshots(root)
        assert len(final) == 1  # one pid -> one file
        assert final[0]["snapshot"]["counters"]["seq"] == \
            self.ROUNDS - 1
        assert observed > 0  # the reader actually raced the writers
        leftovers = [p for p in root.iterdir()
                     if p.name.startswith(".tmp-")]
        assert not leftovers

    def test_corrupt_flush_files_are_skipped(self, tmp_path):
        root = tmp_path / "metrics"
        write_worker_snapshot(root, worker_id=0,
                              snapshot={"counters": {}}, pid=1)
        (root / f"{FLUSH_PREFIX}2.json").write_bytes(b"{ torn")
        (root / f"{FLUSH_PREFIX}3.json").write_text(
            json.dumps({"schema": "someone.else/9", "snapshot": {}}))
        (root / "unrelated.txt").write_text("x")
        records = read_worker_snapshots(root)
        assert [r["pid"] for r in records] == [1]
