"""Second hardening batch: remaining edge cases across modules."""

import pytest

from repro.elf.riscv_attrs import (
    build_attributes_section, encode_uleb, parse_attributes_section,
)
from repro.minicc import compile_source, parse
from repro.parse.gaps import looks_like_prologue
from repro.riscv import assemble, decode, lookup
from repro.riscv.encoder import make
from repro.semantics import evaluate, semantics_for
from repro.sim import Machine, StopReason, run_program


class TestInstructionAccessors:
    def test_rs3_accessor(self):
        i = make("fmadd.d", rd=1, rs1=2, rs2=3, rs3=4)
        assert i.rs3.abi_name == "ft4"

    def test_get_with_default(self):
        i = make("add", rd=1, rs1=2, rs2=3)
        assert i.get("imm") is None
        assert i.get("imm", 7) == 7
        assert i.get("rd") == 1

    def test_compressed_extension_attribution(self):
        from repro.riscv.compressed import decode_compressed, encode_c_nop
        i = decode_compressed(encode_c_nop())
        assert i.extension == "c"          # encoding is compressed
        assert i.spec.extension == "i"     # semantics are base-ISA

    @pytest.mark.parametrize("mn,fields", [
        ("add", dict(rd=1, rs1=2, rs2=3)),
        ("fmadd.d", dict(rd=1, rs1=2, rs2=3, rs3=4)),
        ("ld", dict(rd=1, rs1=2, imm=0)),
        ("sd", dict(rs2=1, rs1=2, imm=0)),
        ("amoadd.w", dict(rd=1, rs1=2, rs2=3)),
        ("csrrw", dict(rd=1, csr=5, rs1=2)),
    ])
    def test_operand_counts_match_spec(self, mn, fields):
        from repro.instruction import Insn
        insn = Insn(make(mn, **fields), 0)
        regs = [o for o in insn.operands() if o.is_register]
        spec_regs = [op for op in insn.raw.spec.operands
                     if op.lstrip("f").startswith("r")]
        assert len(regs) == len(spec_regs)


class TestSemanticsEvaluatorErrors:
    def test_missing_operand_reported(self):
        from repro.riscv.instr import Instruction
        from repro.riscv.opcodes import by_mnemonic
        bad = Instruction(spec=by_mnemonic("add"), fields={"rd": 1},
                          length=4, raw=0)

        class S:
            pc = 0
            def read_xreg(self, n): return 0
            def read_freg(self, n): return 0
            def read_mem(self, a, s): return 0

        with pytest.raises(ValueError) as ei:
            evaluate(semantics_for("add"), bad, S())
        assert "rs1" in str(ei.value) or "rs" in str(ei.value)


class TestGapHeuristics:
    def test_prologue_variants(self):
        assert looks_like_prologue(
            _insn("addi", rd=2, rs1=2, imm=-32))
        assert looks_like_prologue(
            _insn("sd", rs2=1, rs1=2, imm=8))
        assert not looks_like_prologue(
            _insn("addi", rd=2, rs1=2, imm=32))   # frame teardown
        assert not looks_like_prologue(
            _insn("addi", rd=5, rs1=5, imm=-32))  # not sp
        assert not looks_like_prologue(
            _insn("sd", rs2=10, rs1=2, imm=8))    # not ra


def _insn(mn, **fields):
    from repro.instruction import Insn
    return Insn(make(mn, **fields), 0x1000)


class TestSyscallEdges:
    def test_write_to_stderr_captured(self):
        p = assemble("""
_start:
  li a7, 64
  li a0, 2
  la a1, msg
  li a2, 3
  ecall
  li a7, 93
  li a0, 0
  ecall
.data
msg: .asciz "err"
""")
        m, ev = run_program(p)
        assert bytes(m.stdout) == b"err"

    def test_write_to_other_fd_swallowed(self):
        p = assemble("""
_start:
  li a7, 64
  li a0, 7
  la a1, msg
  li a2, 3
  ecall
  mv s0, a0
  li a7, 93
  mv a0, s0
  ecall
.data
msg: .asciz "xxx"
""")
        m, ev = run_program(p)
        assert bytes(m.stdout) == b""
        assert ev.exit_code == 3  # write still reports 3 bytes


class TestAttributesUnknownTags:
    def test_unknown_tags_preserved(self):
        # append an unknown even tag (ULEB value) to a valid section
        blob = bytearray(build_attributes_section("rv64i"))
        # rebuild by hand with an extra attribute: tag 8 (unaligned
        # access = known), tag 32 unknown even
        attrs = parse_attributes_section(bytes(blob))
        assert attrs.arch == "rv64i"

    def test_uleb_multibyte_tag(self):
        assert encode_uleb(300) == bytes([0xAC, 0x02])


class TestMiniCLexerEdges:
    def test_float_exponents(self):
        unit = parse("double x = 1e3; long main(void) { return 0; }")
        assert unit.globals[0].init == [1000.0]

    def test_float_leading_dot(self):
        unit = parse("double x = .5; long main(void) { return 0; }")
        assert unit.globals[0].init == [0.5]

    def test_hex_literals(self):
        from repro.sim import run_program as run_p
        p = compile_source("long main(void) { return 0xFF % 100; }")
        _, ev = run_p(p)
        assert ev.exit_code == 55

    def test_nested_block_comments_not_supported_gracefully(self):
        # C block comments do not nest; the first */ ends it
        p = compile_source(
            "long main(void) { /* a /* b */ return 6; }")
        _, ev = run_program(p)
        assert ev.exit_code == 6


class TestMachineReset:
    def test_load_program_resets_state(self):
        p1 = assemble("_start:\nli a0, 1\nli a7, 93\necall\n")
        p2 = assemble("_start:\nli a0, 2\nli a7, 93\necall\n")
        m = Machine()
        m.load_program(p1)
        ev = m.run()
        assert ev.exit_code == 1
        m.load_program(p2)
        assert m.exit_code is None
        assert m.instret == 0
        ev = m.run()
        assert ev.exit_code == 2
