"""The content-addressed artifact store: key derivation, atomic
writes, and — the point of this file — every way an entry can be bad.

A store entry must never poison an analysis: truncation, corruption,
version skew, key mismatch, and snapshots that disagree with the
binary all degrade to a recompute (counted under ``artifacts.stale``
or ``artifacts.misses``), and concurrent writers of one key race
benignly (atomic rename, last writer wins, no torn reads)."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro import telemetry
from repro.api import InstrumentOptions, analyze
from repro.artifacts import (
    MAGIC, SCHEMA_VERSION, ArtifactError, ArtifactStore, artifact_key,
    content_digest,
)
from repro.elf.writer import write_program
from repro.minicc import compile_source
from repro.minicc.workloads import fib_source


@pytest.fixture(scope="module")
def fib_elf():
    return write_program(compile_source(fib_source(8)))


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestKeyDerivation:
    def test_key_is_stable(self, fib_elf):
        d = content_digest(fib_elf)
        opts = InstrumentOptions().analysis_fields()
        assert artifact_key(d, opts) == artifact_key(d, opts)

    def test_analysis_options_change_the_key(self, fib_elf):
        d = content_digest(fib_elf)
        base = artifact_key(d, InstrumentOptions().analysis_fields())
        gapless = artifact_key(
            d, InstrumentOptions(gap_parsing=False).analysis_fields())
        interproc = artifact_key(
            d, InstrumentOptions(
                interprocedural_liveness=True).analysis_fields())
        assert len({base, gapless, interproc}) == 3

    def test_session_options_do_not_change_the_key(self, fib_elf):
        d = content_digest(fib_elf)
        a = artifact_key(d, InstrumentOptions().analysis_fields())
        b = artifact_key(d, InstrumentOptions(
            use_dead_registers=False,
            patch_base=0x4000_0000).analysis_fields())
        assert a == b

    def test_schema_version_participates(self, fib_elf):
        d = content_digest(fib_elf)
        opts = InstrumentOptions().analysis_fields()
        assert artifact_key(d, opts, schema_version=1) != \
            artifact_key(d, opts, schema_version=2)

    def test_content_participates(self, fib_elf):
        opts = InstrumentOptions().analysis_fields()
        assert artifact_key(content_digest(fib_elf), opts) != \
            artifact_key(content_digest(fib_elf + b"\0"), opts)

    def test_malformed_keys_rejected(self, store):
        for bad in ("", "../escape", ".hidden", "a/b"):
            with pytest.raises(ArtifactError):
                store.dir_for(bad)


class TestStoreRoundTrip:
    KEY = "deadbeef" * 5

    def test_load_store_meta(self, store):
        payload = {"cfg": {"blocks": [1, 2]}, "liveness": {}}
        store.store(self.KEY, payload, meta={"functions": 2})
        assert self.KEY in store
        assert store.keys() == [self.KEY]
        assert store.load(self.KEY) == payload
        assert store.meta(self.KEY)["functions"] == 2

    def test_absent_key_is_a_plain_miss(self, store):
        with telemetry.enabled() as rec:
            assert store.load(self.KEY) is None
        assert rec.snapshot()["counters"] == {"artifacts.misses": 1}

    def test_evict(self, store):
        store.store(self.KEY, {"x": 1})
        assert store.evict(self.KEY)
        assert self.KEY not in store
        assert not store.evict(self.KEY)

    def test_last_writer_wins(self, store):
        store.store(self.KEY, {"v": 1})
        store.store(self.KEY, {"v": 2})
        assert store.load(self.KEY) == {"v": 2}


class TestRejection:
    """Every flavour of bad entry is a stale miss, never an error."""

    KEY = "cafef00d" * 5

    def _stale_count(self, store):
        with telemetry.enabled() as rec:
            result = store.load(self.KEY)
        return result, rec.snapshot()["counters"].get("artifacts.stale")

    def _write_raw(self, store, blob: bytes):
        path = store.path_for(self.KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(blob)

    def test_truncated_entry(self, store):
        store.store(self.KEY, {"cfg": {"big": "x" * 4096}})
        path = store.path_for(self.KEY)
        path.write_bytes(path.read_bytes()[: 100])
        result, stale = self._stale_count(store)
        assert result is None and stale == 1

    def test_garbage_entry(self, store):
        self._write_raw(store, b"\x7fELF not json at all")
        result, stale = self._stale_count(store)
        assert result is None and stale == 1

    def test_wrong_magic(self, store):
        self._write_raw(store, json.dumps({
            "magic": "someone.else/9", "schema_version": SCHEMA_VERSION,
            "key": self.KEY, "payload": {}}).encode())
        result, stale = self._stale_count(store)
        assert result is None and stale == 1

    def test_schema_version_skew(self, store):
        self._write_raw(store, json.dumps({
            "magic": MAGIC, "schema_version": SCHEMA_VERSION + 1,
            "key": self.KEY, "payload": {"cfg": {}}}).encode())
        result, stale = self._stale_count(store)
        assert result is None and stale == 1

    def test_key_mismatch(self, store):
        # an entry copied under the wrong directory name
        self._write_raw(store, json.dumps({
            "magic": MAGIC, "schema_version": SCHEMA_VERSION,
            "key": "0" * 40, "payload": {"cfg": {}}}).encode())
        result, stale = self._stale_count(store)
        assert result is None and stale == 1

    def test_non_dict_payload(self, store):
        self._write_raw(store, json.dumps({
            "magic": MAGIC, "schema_version": SCHEMA_VERSION,
            "key": self.KEY, "payload": [1, 2]}).encode())
        result, stale = self._stale_count(store)
        assert result is None and stale == 1


class TestAnalyzeIntegration:
    def test_cold_then_warm(self, fib_elf, store):
        with telemetry.enabled() as rec:
            cold = analyze(fib_elf, store=store)
        counters = rec.snapshot()["counters"]
        assert counters["artifacts.misses"] == 1
        assert counters["artifacts.stores"] == 1
        assert not cold.revived

        with telemetry.enabled() as rec:
            warm = analyze(fib_elf, store=store)
        snap = rec.snapshot()
        assert snap["counters"].get("artifacts.hits") == 1
        # the acceptance criterion: zero recomputation on a warm open
        assert not any(n.startswith("parse.") for n in snap["spans"])
        assert not any(n.startswith("liveness.")
                       for n in snap["counters"])
        assert warm.revived
        assert warm.key == cold.key
        assert sorted(warm.cfg.functions) == sorted(cold.cfg.functions)

    def test_options_mismatch_is_a_miss(self, fib_elf, store):
        analyze(fib_elf, store=store)
        with telemetry.enabled() as rec:
            other = analyze(
                fib_elf, InstrumentOptions(gap_parsing=False),
                store=store)
        counters = rec.snapshot()["counters"]
        assert counters.get("artifacts.misses") == 1
        assert "artifacts.hits" not in counters
        assert not other.revived
        assert len(store.keys()) == 2

    def test_corrupt_entry_recomputes_and_heals(self, fib_elf, store):
        cold = analyze(fib_elf, store=store)
        store.path_for(cold.key).write_bytes(b"{ torn")
        with telemetry.enabled() as rec:
            again = analyze(fib_elf, store=store)
        counters = rec.snapshot()["counters"]
        assert counters.get("artifacts.stale") == 1
        assert counters.get("artifacts.stores") == 1  # re-stored
        assert not again.revived
        assert analyze(fib_elf, store=store).revived  # healed

    def test_snapshot_for_wrong_binary_is_stale(self, fib_elf, store):
        """A validly-framed entry whose payload disagrees with the
        binary (here: a different mutatee's snapshot planted under our
        key) must degrade to recompute, not crash or mis-revive."""
        from repro.minicc.workloads import matmul_source

        other_elf = write_program(compile_source(matmul_source(4, 1)))
        planted = analyze(other_elf, store=store)
        key = artifact_key(content_digest(fib_elf),
                           InstrumentOptions().analysis_fields())
        store.store(key, store.load(planted.key))
        with telemetry.enabled() as rec:
            a = analyze(fib_elf, store=store)
        counters = rec.snapshot()["counters"]
        # loaded fine (a hit), but revival rejected it as stale
        assert counters.get("artifacts.hits") == 1
        assert counters.get("artifacts.stale") == 1
        assert not a.revived
        assert "fib" in {f.name for f in a.cfg.functions.values()}


def _writer_main(root, key, writer_id, rounds):
    st = ArtifactStore(root)
    blob = chr(ord("a") + writer_id) * 20_000
    for seq in range(rounds):
        st.store(key, {"writer": writer_id, "seq": seq, "blob": blob})


class TestConcurrentWriters:
    KEY = "feedface" * 5
    WRITERS = 4
    ROUNDS = 30

    def test_no_torn_reads_last_writer_wins(self, store):
        """Several processes hammer one key while this process reads:
        every successful load must be a complete payload from exactly
        one writer (atomic rename), and the final state is some
        writer's last round (last writer wins)."""
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_writer_main,
                             args=(os.fspath(store.root), self.KEY,
                                   i, self.ROUNDS))
                 for i in range(self.WRITERS)]
        for p in procs:
            p.start()
        observed = 0
        try:
            while any(p.is_alive() for p in procs):
                payload = store.load(self.KEY)
                if payload is None:
                    continue
                observed += 1
                expect = chr(ord("a") + payload["writer"]) * 20_000
                assert payload["blob"] == expect, "torn read"
        finally:
            for p in procs:
                p.join()
        assert all(p.exitcode == 0 for p in procs)
        final = store.load(self.KEY)
        assert final["seq"] == self.ROUNDS - 1
        assert final["blob"] == chr(ord("a") + final["writer"]) * 20_000
        assert observed > 0  # the reader actually raced the writers
        # no temp droppings left behind
        leftovers = [p for p in store.dir_for(self.KEY).iterdir()
                     if p.name.startswith(".tmp-")]
        assert not leftovers
