"""Cross-validation of the SAIL-derived semantics against the hand-written
fast simulator.

The paper's pipeline generates semantic classes from the formal spec; our
simulator implements the same instructions independently.  PROPERTY: for
every integer instruction with precise semantics, evaluating the IR on a
random machine state must produce exactly the register/pc/memory writes
the simulator's execution produces.  This pins both implementations to
each other (and, transitively, to the architecture).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.riscv.encoder import encode_fields, make
from repro.riscv.opcodes import by_mnemonic
from repro.semantics import evaluate, sail_semantics
from repro.sim import Machine
from repro.sim.memory import PAGE_SIZE

_BASE = 0x2000  # scratch memory region the random state points into
_CODE = 0x1000

#: Instructions excluded from the cross-check: fences have no
#: state-visible effect; ecall/ebreak trap.
_SKIP = {"fence", "fence.i", "ecall", "ebreak"}

_MNEMONICS = sorted(mn for mn in sail_semantics() if mn not in _SKIP)


class _EvalAdapter:
    """Expose a Machine as the evaluator's EvalState protocol."""

    def __init__(self, m: Machine):
        self._m = m
        self.pc = m.pc

    def read_xreg(self, n):
        return self._m.x[n]

    def read_freg(self, n):
        return self._m.f[n]

    def read_mem(self, addr, size):
        return self._m.mem.read_int(addr, size)


def _fresh_machine(reg_values, mem_bytes):
    m = Machine()
    m.mem.map_region(_CODE, PAGE_SIZE)
    m.mem.map_region(_BASE, PAGE_SIZE)
    m.mem.write_bytes(_BASE, mem_bytes)
    for i in range(1, 32):
        m.x[i] = reg_values[i - 1]
    m.pc = _CODE + 0x100
    return m


def _random_fields(spec, draw):
    reg = st.integers(0, 31)
    f = {}
    ops = {op if op[0] != "f" else op[1:] for op in spec.operands}
    fmt = spec.fmt
    if "rd" in ops:
        f["rd"] = draw(reg)
    if fmt in ("R", "SHIFT64", "SHIFT32", "I", "S", "B"):
        if "rs1" in ops or fmt in ("I", "S", "B"):
            f["rs1"] = draw(reg)
    if fmt in ("S", "B") or "rs2" in ops:
        f["rs2"] = draw(reg)
    if fmt in ("I", "S"):
        f["imm"] = draw(st.integers(-2048, 2047))
    elif fmt == "B":
        f["imm"] = draw(st.integers(-1024, 1023)) * 2
    elif fmt == "U":
        f["imm"] = draw(st.integers(-(1 << 19), (1 << 19) - 1))
    elif fmt == "J":
        f["imm"] = draw(st.integers(-(1 << 18), (1 << 18) - 1)) * 2
    elif fmt == "SHIFT64":
        f["shamt"] = draw(st.integers(0, 63))
    elif fmt == "SHIFT32":
        f["shamt"] = draw(st.integers(0, 31))
    return f


@settings(max_examples=30, deadline=None)
@given(data=st.data())
@pytest.mark.parametrize("mnemonic", _MNEMONICS)
def test_sail_semantics_match_simulator(mnemonic, data):
    spec = by_mnemonic(mnemonic)
    fields = _random_fields(spec, data.draw)

    # Random register state; memory-addressing registers are redirected
    # into the scratch region so loads/stores stay mapped.
    regs = data.draw(st.lists(
        st.integers(0, (1 << 64) - 1), min_size=31, max_size=31))
    mem0 = data.draw(st.binary(min_size=256, max_size=256))

    sem = sail_semantics()[mnemonic]
    if sem.reads_memory() or sem.writes_memory():
        rs1 = fields.get("rs1")
        if rs1:
            offset = data.draw(st.integers(0, 100))
            regs = list(regs)
            regs[rs1 - 1] = _BASE + 64 + offset  # keep addr+imm in range
        elif rs1 == 0:
            # address would be 0 + imm: force a mapped address via imm
            fields["imm"] = _BASE + 64 if -2048 <= _BASE + 64 <= 2047 else 64
            return  # unmappable without a base register; skip

    m_sim = _fresh_machine(regs, mem0)
    m_ref = _fresh_machine(regs, mem0)

    instr = make(mnemonic, **fields)
    word = encode_fields(spec, fields)
    m_sim.mem.write_int(m_sim.pc, 4, word)

    # Reference: evaluate IR semantics against the *pre* state.
    writes = evaluate(sem, instr, _EvalAdapter(m_ref))

    ev = m_sim.step()
    assert ev is None, f"simulator stopped: {ev}"

    # Apply reference writes to the reference machine.
    expected_pc = None
    for w in writes:
        if w[0] == "x":
            m_ref.x[w[1]] = w[2]
        elif w[0] == "mem":
            m_ref.mem.write_int(w[1], w[2], w[3])
        elif w[0] == "pc":
            expected_pc = w[1]

    assert m_sim.pc == expected_pc, "pc mismatch"
    assert m_sim.x == m_ref.x, "register file mismatch"
    assert (m_sim.mem.read_bytes(_BASE, 256)
            == m_ref.mem.read_bytes(_BASE, 256)), "memory mismatch"
