"""Executable documentation: run every Python block in docs/TUTORIAL.md
in one shared namespace — the tutorial cannot rot."""

import re
from pathlib import Path

TUTORIAL = Path(__file__).parent.parent / "docs" / "TUTORIAL.md"


def test_tutorial_blocks_execute():
    text = TUTORIAL.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
    assert len(blocks) >= 5
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
        except Exception as e:  # pragma: no cover - doc bug reporting
            raise AssertionError(
                f"tutorial block {i} failed: {e}\n---\n{block}") from e

    # the tutorial's own claims
    binary = namespace["binary"]
    machine = namespace["machine"]
    assert binary.read_variable(machine, namespace["all_calls"]) == 40
    assert binary.read_variable(machine, namespace["big_calls"]) == 20
    assert namespace["value"] == 33
