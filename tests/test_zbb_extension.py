"""End-to-end validation of the Zbb extension addition (paper §3.4).

The paper claims new-extension support reduces to: Capstone adds the
encodings, the SAIL pipeline regenerates semantic classes.  In this
toolkit: rows in the opcode table + clauses in the mini-SAIL DSL +
simulator lambdas.  These tests verify the whole stack picked the new
extension up — decode, assemble, execute, analyze, and gate codegen.

(The encode/decode roundtrip and the semantics-vs-simulator cross-check
property tests cover Zbb automatically because they are table-driven —
itself part of the extensibility claim.)
"""

import pytest

from repro.dataflow import resolve_register
from repro.parse import parse_binary
from repro.riscv import RV64GC, assemble, decode_word, encode, lookup
from repro.riscv.extensions import RVA23_SUBSET, parse_arch_string
from repro.semantics import has_precise_semantics
from repro.sim import run_program
from repro.symtab import Symtab


def run_asm(src, max_steps=100_000):
    p = assemble(src, arch=RVA23_SUBSET)
    m, ev = run_program(p, max_steps=max_steps)
    assert ev.reason.value == "exited"
    return ev.exit_code, m


class TestDecodingAndAssembly:
    def test_all_zbb_mnemonics_registered(self):
        from repro.riscv.opcodes import specs_for_extension
        mnemonics = {s.mnemonic for s in specs_for_extension("zbb")}
        assert mnemonics == {
            "andn", "orn", "xnor", "min", "minu", "max", "maxu",
            "rol", "ror", "rori", "clz", "ctz", "cpop",
            "sext.b", "sext.h", "zext.h",
        }

    def test_unary_encodings_distinct(self):
        # clz/ctz/cpop share opcode+funct3; funct12 disambiguates.
        for mn in ("clz", "ctz", "cpop", "sext.b", "sext.h"):
            w = encode(mn, rd=1, rs1=2)
            assert decode_word(w).mnemonic == mn

    def test_zext_h_requires_zero_rs2(self):
        w = encode("zext.h", rd=1, rs1=2)
        assert decode_word(w).mnemonic == "zext.h"
        # with a nonzero rs2 field the same bits would be a different
        # (unknown) instruction — must not decode as zext.h
        from repro.riscv import DecodeError
        with pytest.raises(DecodeError):
            decode_word(w | (3 << 20))

    def test_rori_distinct_from_srai(self):
        assert decode_word(encode("rori", rd=1, rs1=2, shamt=7)).mnemonic == "rori"
        assert decode_word(encode("srai", rd=1, rs1=2, shamt=7)).mnemonic == "srai"

    def test_assembler_gates_on_extension(self):
        from repro.riscv import AsmError
        with pytest.raises(AsmError):
            assemble("clz a0, a1\n", arch=RV64GC)
        assemble("clz a0, a1\n", arch=RVA23_SUBSET)

    def test_arch_string_roundtrip(self):
        s = RVA23_SUBSET.arch_string()
        assert "zbb" in s
        assert parse_arch_string(s).supports("zbb")


class TestExecution:
    def test_clz_ctz_cpop(self):
        code, _ = run_asm("""
_start:
  li a1, 0x00f0
  clz a2, a1        # 64 - 8 = 56
  ctz a3, a1        # 4
  cpop a4, a1       # 4
  add a0, a2, a3
  add a0, a0, a4    # 64
  li a7, 93
  ecall
""")
        assert code == 64

    def test_clz_ctz_zero_input(self):
        code, _ = run_asm("""
_start:
  clz a1, zero      # 64
  ctz a2, zero      # 64
  add a0, a1, a2
  li a7, 93
  ecall
""")
        assert code == 128

    def test_min_max(self):
        code, _ = run_asm("""
_start:
  li a1, -5
  li a2, 3
  min a3, a1, a2     # -5
  max a4, a1, a2     # 3
  minu a5, a1, a2    # 3 (unsigned: -5 is huge)
  sub a0, a4, a5     # 0
  sub a3, a3, a1     # 0
  add a0, a0, a3
  li a7, 93
  ecall
""")
        assert code == 0

    def test_rotates(self):
        code, _ = run_asm("""
_start:
  li a1, 1
  li a2, 60
  rol a3, a1, a2     # 1 << 60
  li a2, 4
  rol a3, a3, a2     # wraps to 1
  rori a4, a1, 63    # 1 rotated right 63 = 2
  add a0, a3, a4
  li a7, 93
  ecall
""")
        assert code == 3

    def test_sign_extension_ops(self):
        code, _ = run_asm("""
_start:
  li a1, 0x80
  sext.b a2, a1      # -128
  li a3, 0x8000
  sext.h a4, a3      # -32768
  li a5, 0x12345
  zext.h a6, a5      # 0x2345
  neg a2, a2         # 128
  srai a4, a4, 8     # -128
  add a0, a2, a4     # 0
  li t0, 0x2345
  sub a6, a6, t0
  add a0, a0, a6
  li a7, 93
  ecall
""")
        assert code == 0

    def test_logic_with_negate(self):
        code, _ = run_asm("""
_start:
  li a1, 0b1100
  li a2, 0b1010
  andn a3, a1, a2    # 0b0100
  orn a4, zero, a2   # ~0b1010 -> ...11110101; low nibble 0101
  andi a4, a4, 15
  xnor a5, a1, a1    # all ones
  andi a5, a5, 1
  add a0, a3, a4     # 4 + 5
  add a0, a0, a5     # +1
  li a7, 93
  ecall
""")
        assert code == 10


class TestAnalysis:
    def test_precise_semantics_present(self):
        for mn in ("andn", "min", "rol", "clz", "sext.b", "zext.h"):
            assert has_precise_semantics(mn), mn

    def test_constprop_through_zbb(self):
        """Backward slicing resolves jalr targets computed with Zbb ops
        — the analysis benefits from the pipeline rerun automatically."""
        p = assemble("""
.type f, @function
f:
  li t0, 0x20000
  li t1, 0x10000
  max t0, t0, t1      # 0x20000
  ctz t2, t0          # 17
  sub t0, t0, t2
  addi t0, t0, 17     # back to 0x20000... keep simple: 0x20000
  jr t0
""", arch=RVA23_SUBSET)
        co = parse_binary(Symtab.from_program(p))
        f = co.function_containing(p.entry)
        insns = sorted(f.instructions(), key=lambda i: i.address)
        v = resolve_register(insns, len(insns) - 1, lookup("t0"))
        assert v == 0x20000

    def test_codegen_gates_zbb(self):
        """CodeGenAPI must not hand Zbb instructions to an RV64GC
        mutatee (paper §3.1.1) — verified through the generic gate."""
        from repro.codegen import SnippetGenerator
        from repro.codegen.generator import ExtensionUnavailable
        gen = SnippetGenerator(RV64GC, [lookup("t0"), lookup("t1")])
        with pytest.raises(ExtensionUnavailable):
            gen._emit("clz", rd=5, rs1=6)
        gen_rva = SnippetGenerator(RVA23_SUBSET,
                                   [lookup("t0"), lookup("t1")])
        gen_rva._emit("clz", rd=5, rs1=6)  # accepted
