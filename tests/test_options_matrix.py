"""Compiler-option matrix: every combination of MiniC code-generation
options must yield binaries that analyze and instrument correctly.

Frame pointers change the prologue ParseAPI/stack-height see;
compression changes instruction sizes at patch points; tail calls change
edge classification — this matrix checks the interplay end to end.
"""

import itertools

import pytest

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import Options, compile_source, fib_source, tailcall_source
from repro.patch import PointType
from repro.sim import StopReason

MATRIX = list(itertools.product([False, True], repeat=3))


@pytest.mark.parametrize("fp,compress,tails", MATRIX,
                         ids=lambda v: str(v))
def test_option_combo_instrumentable(fp, compress, tails):
    opts = Options(use_frame_pointer=fp, compress=compress,
                   tail_calls=tails)
    program = compile_source(fib_source(8), opts)

    base = open_binary(program)
    m0, ev0 = base.run_instrumented()
    assert ev0.reason is StopReason.EXITED
    assert bytes(m0.stdout).startswith(b"21\n")

    b = open_binary(program)
    c = b.allocate_variable("calls")
    b.insert(b.points("fib", PointType.FUNC_ENTRY), IncrementVar(c))
    bb = b.allocate_variable("bb")
    for pt in b.points(b.function("fib"), PointType.BLOCK_ENTRY):
        b.insert(pt, IncrementVar(bb))
    m, ev = b.run_instrumented()
    assert ev.reason is StopReason.EXITED
    assert bytes(m.stdout) == bytes(m0.stdout)
    assert m.mem.read_int(c.address, 8) == 67
    assert m.mem.read_int(bb.address, 8) >= 67


@pytest.mark.parametrize("fp,compress", itertools.product(
    [False, True], repeat=2), ids=lambda v: str(v))
def test_tailcall_program_option_combos(fp, compress):
    opts = Options(use_frame_pointer=fp, compress=compress,
                   tail_calls=True)
    program = compile_source(tailcall_source(60), opts)
    b = open_binary(program)
    odd = b.function("odd_step")
    even = b.function("even_step")
    assert even.entry in odd.tail_callees
    c = b.allocate_variable("odd_entries")
    b.insert(b.points(odd, PointType.FUNC_ENTRY), IncrementVar(c))
    m, ev = b.run_instrumented()
    assert ev.reason is StopReason.EXITED
    assert bytes(m.stdout) == b"60\n"
    # odd_step entered first, then every other step: 60/2 = 30 entries,
    # plus the initial call = 31 total entries via tail-call chain
    assert m.mem.read_int(c.address, 8) == 31
