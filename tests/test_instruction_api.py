"""InstructionAPI tests: categories, operands, read/write sets, raw
control-flow facts."""

from repro.instruction import Insn, InsnCategory, decode_insn
from repro.riscv import lookup, make
from repro.riscv.encoder import instruction_bytes


def mk(mnemonic, addr=0x1000, **fields):
    return Insn(make(mnemonic, **fields), addr)


class TestCategories:
    def test_arithmetic(self):
        assert mk("add", rd=1, rs1=2, rs2=3).category is InsnCategory.ARITHMETIC

    def test_load_store(self):
        assert mk("ld", rd=1, rs1=2, imm=0).category is InsnCategory.LOAD
        assert mk("sd", rs2=1, rs1=2, imm=0).category is InsnCategory.STORE
        assert mk("fld", rd=1, rs1=2, imm=0).category is InsnCategory.LOAD

    def test_control_flow(self):
        assert mk("beq", rs1=1, rs2=2, imm=8).category is InsnCategory.BRANCH
        assert mk("jal", rd=1, imm=8).category is InsnCategory.JUMP
        assert mk("jalr", rd=0, rs1=1, imm=0).category is InsnCategory.JUMP

    def test_system(self):
        assert mk("ecall").category is InsnCategory.SYSCALL
        assert mk("ebreak").category is InsnCategory.TRAP
        assert mk("csrrw", rd=0, csr=1, rs1=2).category is InsnCategory.CSR

    def test_atomic_and_float(self):
        assert mk("amoadd.d", rd=1, rs1=2, rs2=3).category is InsnCategory.ATOMIC
        assert mk("fadd.d", rd=1, rs1=2, rs2=3).category is InsnCategory.FLOAT

    def test_nop(self):
        assert mk("addi", rd=0, rs1=0, imm=0).is_nop
        assert mk("addi", rd=0, rs1=0, imm=0).category is InsnCategory.NOP
        assert not mk("addi", rd=1, rs1=0, imm=0).is_nop


class TestControlFlowFacts:
    def test_direct_target_jal(self):
        i = mk("jal", addr=0x2000, rd=0, imm=-16)
        assert i.direct_target() == 0x2000 - 16

    def test_direct_target_branch(self):
        i = mk("bne", addr=0x2000, rs1=1, rs2=2, imm=32)
        assert i.direct_target() == 0x2020
        assert i.is_conditional_branch

    def test_jalr_has_no_direct_target(self):
        i = mk("jalr", rd=0, rs1=1, imm=0)
        assert i.direct_target() is None
        assert i.indirect_base == lookup("ra")

    def test_link_register_detection(self):
        assert mk("jal", rd=1, imm=0).links            # ra
        assert mk("jalr", rd=5, rs1=10, imm=0).links   # t0 alternate
        assert not mk("jal", rd=0, imm=0).links
        assert not mk("jal", rd=10, imm=0).links       # a0 is not a link reg

    def test_writes_pc(self):
        assert mk("jal", rd=0, imm=0).writes_pc
        assert mk("beq", rs1=0, rs2=0, imm=0).writes_pc
        assert not mk("add", rd=1, rs1=2, rs2=3).writes_pc


class TestOperandsAndSets:
    def test_rtype_operands(self):
        ops = mk("add", rd=1, rs1=2, rs2=3).operands()
        assert [(o.value.abi_name, o.is_written) for o in ops if o.is_register] \
            == [("ra", True), ("sp", False), ("gp", False)]

    def test_read_write_sets_semantic(self):
        i = mk("add", rd=1, rs1=2, rs2=3)
        assert i.read_set() == {lookup("sp"), lookup("gp")}
        assert i.write_set() == {lookup("ra")}

    def test_x0_excluded(self):
        i = mk("addi", rd=5, rs1=0, imm=1)
        assert i.read_set() == set()

    def test_store_reads_both(self):
        i = mk("sd", rs2=10, rs1=2, imm=8)
        assert i.read_set() == {lookup("a0"), lookup("sp")}
        assert i.write_set() == set()

    def test_fp_sets(self):
        i = mk("fmadd.d", rd=1, rs1=2, rs2=3, rs3=4)
        assert i.write_set() == {lookup("ft1")}
        assert i.read_set() == {lookup("ft2"), lookup("ft3"), lookup("ft4")}


class TestMemoryAccess:
    def test_load_access(self):
        acc = mk("lw", rd=1, rs1=2, imm=-4).memory_access()
        assert acc.base == lookup("sp")
        assert acc.displacement == -4
        assert acc.size == 4
        assert acc.is_read and not acc.is_write

    def test_store_access(self):
        acc = mk("sb", rs2=1, rs1=3, imm=7).memory_access()
        assert acc.size == 1 and acc.is_write

    def test_amo_access(self):
        acc = mk("amoswap.w", rd=1, rs1=2, rs2=3).memory_access()
        assert acc.is_read and acc.is_write and acc.size == 4
        lr = mk("lr.d", rd=1, rs1=2).memory_access()
        assert lr.is_read and not lr.is_write

    def test_non_memory(self):
        assert mk("add", rd=1, rs1=2, rs2=3).memory_access() is None

    def test_flags(self):
        assert mk("ld", rd=1, rs1=2, imm=0).reads_memory
        assert mk("sd", rs2=1, rs1=2, imm=0).writes_memory


class TestDecodeInsn:
    def test_decode_with_address(self):
        blob = instruction_bytes(make("addi", rd=1, rs1=0, imm=5))
        i = decode_insn(blob, 0, 0x4000)
        assert i.address == 0x4000
        assert i.next_address == 0x4004
        assert not i.is_compressed

    def test_compressed_length(self):
        from repro.riscv.compressed import encode_c_nop
        i = decode_insn(encode_c_nop().to_bytes(2, "little"), 0, 0x4000)
        assert i.is_compressed and i.next_address == 0x4002
