"""Instrumentation of binaries containing compressed instructions —
the paper's §3.1.2 space problems, exercised end to end.

Covers: block entries starting with 2-byte instructions (slot covers
multiple originals), the c.j springboard rung (2-byte slot, trampoline
within +-2KiB), functions shorter than 4 bytes, and ground-truth
validation on compress=True MiniC binaries.
"""

import pytest

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import Options, compile_source, fib_source
from repro.parse import parse_binary
from repro.patch import Patcher, PointType, function_entry, instruction_point
from repro.riscv import assemble
from repro.sim import Machine, StopReason
from repro.symtab import Symtab


class TestCompressedBinaryInstrumentation:
    def test_compressed_minicc_counts_match_ground_truth(self):
        program = compile_source(fib_source(7), Options(compress=True))
        # ensure the binary actually contains compressed instructions
        from repro.riscv import decode_all
        assert any(i.length == 2 for _, i in
                   decode_all(program.text, program.text_base))

        symtab = Symtab.from_program(program)
        cfg = parse_binary(symtab)
        fib = cfg.function_by_name("fib")
        starts = {b.start for b in fib.blocks.values() if b.insns}

        m = Machine()
        symtab.load_into(m)
        truth = 0
        while True:
            if m.pc in starts:
                truth += 1
            if m.step() is not None:
                break
        base_out = bytes(m.stdout)

        b = open_binary(program)
        c = b.allocate_variable("bb")
        for pt in b.points(b.function("fib"), PointType.BLOCK_ENTRY):
            b.insert(pt, IncrementVar(c))
        mi, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert bytes(mi.stdout) == base_out
        assert mi.mem.read_int(c.address, 8) == truth

    def test_point_on_compressed_instruction(self):
        program = compile_source(
            "long main(void) { long a = 5; long b = a; return a + b; }",
            Options(compress=True))
        symtab = Symtab.from_program(program)
        cfg = parse_binary(symtab)
        main = cfg.function_by_name("main")
        compressed = [i for i in main.instructions() if i.length == 2]
        assert compressed
        target = compressed[0]

        b = open_binary(program)
        c = b.allocate_variable("hits")
        main2 = b.function("main")
        b.insert(instruction_point(main2, target.address),
                 IncrementVar(c))
        m, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == 10
        assert m.mem.read_int(c.address, 8) == 1


class TestDenseAutoCompressedBinaries:
    """With assembler auto-RVC (GCC-like density), everything still
    works: jump tables resolve, instrumentation counts exactly."""

    def test_jump_table_resolves_in_compressed_code(self):
        from repro.minicc import Options, switch_source
        program = compile_source(switch_source(20), Options(compress=True))
        co = parse_binary(Symtab.from_program(program))
        d = co.function_by_name("dispatch")
        assert len(d.jump_tables) == 1
        assert not d.unresolved
        targets = next(iter(d.jump_tables.values()))
        assert len(targets) == 6

    def test_dense_binary_block_counts_exact(self):
        from repro.minicc import Options
        program = compile_source(fib_source(7), Options(compress=True))
        symtab = Symtab.from_program(program)
        cfg = parse_binary(symtab)
        fib = cfg.function_by_name("fib")
        starts = {b.start for b in fib.blocks.values() if b.insns}
        m = Machine()
        symtab.load_into(m)
        truth = 0
        while True:
            if m.pc in starts:
                truth += 1
            if m.step() is not None:
                break
        b = open_binary(program)
        c = b.allocate_variable("bb")
        for pt in b.points(b.function("fib"), PointType.BLOCK_ENTRY):
            b.insert(pt, IncrementVar(c))
        mi, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert mi.mem.read_int(c.address, 8) == truth

    def test_dense_rewrite_roundtrip(self):
        from repro.minicc import Options
        from repro.patch import function_entry, rewrite, load_instrumented
        program = compile_source(fib_source(8), Options(compress=True))
        st = Symtab.from_program(program)
        co = parse_binary(st)
        patcher = Patcher(st, co)
        c = patcher.allocate_var("n")
        patcher.insert(function_entry(co.function_by_name("fib")),
                       IncrementVar(c))
        blob = rewrite(st, patcher.commit())
        m = Machine()
        load_instrumented(m, blob)
        ev = m.run(max_steps=5_000_000)
        assert ev.reason is StopReason.EXITED
        assert m.mem.read_int(c.address, 8) == 67


class TestCJSpringboardRung:
    def _two_byte_slot_program(self):
        """A function ending in a compressed return (c.jr ra): a point
        on it has only 2 overwritable bytes — the paper's 'functions
        shorter than four bytes' squeeze."""
        return assemble("""
.globl _start
_start:
  li a0, 0
  li s0, 50
again:
  call tick
  addi s0, s0, -1
  bnez s0, again
  li a7, 93
  ecall
.type tick, @function
tick:
  addi a0, a0, 1
  c.jr ra
""")

    @staticmethod
    def _exit_site(p, co):
        tick = co.function_by_name("tick")
        ret = max(i.address for i in tick.instructions())
        return tick, ret

    def test_cj_rung_with_close_trampoline(self):
        """Trampoline placed within +-2KiB: the 2-byte slot must take
        the c.j rung, not the trap."""
        p = self._two_byte_slot_program()
        st = Symtab.from_program(p)
        co = parse_binary(st)
        tick, site = self._exit_site(p, co)
        # patch area immediately after text (16-byte aligned, NOT page
        # aligned): the trampoline must land within c.j's +-2KiB
        patch_base = (p.text_base + len(p.text) + 15) & ~15
        patcher = Patcher(st, co, patch_base=patch_base, data_size=0x100)
        c = patcher.allocate_var("n")
        patcher.insert(instruction_point(tick, site), IncrementVar(c))
        res = patcher.commit()
        assert res.stats.springboards.get("c.j", 0) == 1
        m = Machine()
        st.load_into(m)
        res.apply_to_machine(m)
        ev = m.run(max_steps=100_000)
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == 50
        assert m.mem.read_int(c.address, 8) == 50

    def test_trap_rung_when_far(self):
        """Same point with a far patch area: only the trap fits."""
        p = self._two_byte_slot_program()
        st = Symtab.from_program(p)
        co = parse_binary(st)
        tick, site = self._exit_site(p, co)
        patcher = Patcher(st, co, patch_base=0x1_0000 + (8 << 20))
        c = patcher.allocate_var("n")
        patcher.insert(instruction_point(tick, site), IncrementVar(c))
        res = patcher.commit()
        assert res.stats.springboards.get("trap", 0) == 1
        m = Machine()
        st.load_into(m)
        res.apply_to_machine(m)
        ev = m.run(max_steps=200_000)
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == 50
        assert m.mem.read_int(c.address, 8) == 50

    def test_springboard_slot_covering_two_compressed(self):
        """A 4-byte springboard over two 2-byte originals relocates both."""
        p = assemble("""
.globl _start
_start:
  li a0, 0
  li s0, 10
loop:
  c.addi a0, 2
  c.addi a0, 3
  addi s0, s0, -1
  bnez s0, loop
  li a7, 93
  ecall
""")
        st = Symtab.from_program(p)
        co = parse_binary(st)
        fn = co.function_containing(p.entry)
        loop_addr = p.symbols["loop"].address
        patcher = Patcher(st, co)
        c = patcher.allocate_var("n")
        patcher.insert(instruction_point(fn, loop_addr), IncrementVar(c))
        res = patcher.commit()
        assert res.stats.springboards.get("jal", 0) == 1
        m = Machine()
        st.load_into(m)
        res.apply_to_machine(m)
        ev = m.run(max_steps=100_000)
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == 50  # 10 * (2 + 3): both originals ran
        assert m.mem.read_int(c.address, 8) == 10
