"""Edge instrumentation tests: branch-taken / branch-not-taken points
(paper §2's CFG-level point list) and the upgraded loop back-edge
semantics."""

import pytest

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source, fib_source
from repro.patch import (
    PatchError, Patcher, PointType, branch_edges, edge_point,
    function_entry, points_for,
)
from repro.parse import parse_binary
from repro.sim import Machine, StopReason
from repro.symtab import Symtab
from repro.tools import count_loop_iterations

BRANCHY = """
long classify(long x) {
    if (x > 10) { return 2; }
    return 1;
}
long main(void) {
    long big = 0;
    long small = 0;
    for (long i = 0; i < 20; i = i + 1) {
        if (classify(i) == 2) { big = big + 1; }
        else { small = small + 1; }
    }
    return big * 16 + small;
}
"""


def _instrumented_run(binary):
    m, ev = binary.run_instrumented()
    assert ev.reason is StopReason.EXITED, ev
    return m


class TestEdgePoints:
    def test_discovery(self):
        b = open_binary(compile_source(BRANCHY))
        classify = b.function("classify")
        taken = branch_edges(classify, taken=True)
        not_taken = branch_edges(classify, taken=False)
        assert len(taken) == len(not_taken) == 1
        assert taken[0].type is PointType.EDGE_TAKEN

    def test_points_for_dispatch(self):
        b = open_binary(compile_source(BRANCHY))
        fn = b.function("classify")
        assert points_for(fn, PointType.EDGE_TAKEN)
        assert points_for(fn, PointType.EDGE_NOT_TAKEN)

    def test_edge_point_requires_branch_block(self):
        from repro.patch import PointError
        b = open_binary(compile_source(BRANCHY))
        fn = b.function("classify")
        entry = fn.entry_block
        if entry.last is not None and entry.last.is_conditional_branch:
            pytest.skip("entry block ends in a branch here")
        with pytest.raises(PointError):
            edge_point(fn, entry, taken=True)


class TestEdgeCounting:
    def test_taken_and_not_taken_partition_executions(self):
        """taken + not-taken counts must equal total branch executions,
        and each side must match ground truth."""
        b = open_binary(compile_source(BRANCHY))
        classify = b.function("classify")
        t = b.allocate_variable("taken")
        n = b.allocate_variable("ntaken")
        total = b.allocate_variable("total")
        branch_block = next(
            blk for blk in classify.blocks.values()
            if blk.last is not None and blk.last.is_conditional_branch)
        b.insert(edge_point(classify, branch_block, True),
                 IncrementVar(t))
        b.insert(edge_point(classify, branch_block, False),
                 IncrementVar(n))
        # an unconditional point at the same branch counts every execution
        from repro.patch import instruction_point
        b.insert(instruction_point(classify, branch_block.last.address),
                 IncrementVar(total))
        m = _instrumented_run(b)
        vt = m.mem.read_int(t.address, 8)
        vn = m.mem.read_int(n.address, 8)
        vtot = m.mem.read_int(total.address, 8)
        assert vt + vn == vtot == 20
        # classify(i)==2 iff i>10: MiniC lowers `x > 10` to a branch; we
        # only require the partition to be the 9/11 split in some order.
        assert {vt, vn} == {9, 11}

    def test_program_semantics_preserved(self):
        b0 = open_binary(compile_source(BRANCHY))
        m0, ev0 = b0.run_instrumented()
        base_code = ev0.exit_code

        b = open_binary(compile_source(BRANCHY))
        fn = b.function("main")
        c = b.allocate_variable("edges")
        for pt in branch_edges(fn, taken=True):
            b.insert(pt, IncrementVar(c))
        m, ev = b.run_instrumented()
        assert ev.exit_code == base_code
        assert m.mem.read_int(c.address, 8) > 0

    def test_edge_counts_match_ground_truth_trace(self):
        """Cross-validate edge counters against a stepping trace of the
        uninstrumented program."""
        src = compile_source(fib_source(7))
        st = Symtab.from_program(src)
        co = parse_binary(st)
        fib = co.function_by_name("fib")
        branch_blocks = [blk for blk in fib.blocks.values()
                         if blk.last is not None
                         and blk.last.is_conditional_branch]
        assert branch_blocks
        blk = branch_blocks[0]
        target = blk.last.direct_target()
        site = blk.last.address
        ft = site + blk.last.length

        # ground truth by stepping
        m = Machine()
        st.load_into(m)
        taken_truth = nt_truth = 0
        prev = None
        while True:
            prev = m.pc
            if m.step() is not None:
                break
            if prev == site:
                if m.pc == target:
                    taken_truth += 1
                elif m.pc == ft:
                    nt_truth += 1

        b = open_binary(src)
        fib2 = b.function("fib")
        blk2 = fib2.block_at(site)
        t = b.allocate_variable("t")
        n = b.allocate_variable("n")
        b.insert(edge_point(fib2, blk2, True), IncrementVar(t))
        b.insert(edge_point(fib2, blk2, False), IncrementVar(n))
        mi = _instrumented_run(b)
        assert mi.mem.read_int(t.address, 8) == taken_truth
        assert mi.mem.read_int(n.address, 8) == nt_truth


class TestLoopBackedgeUpgrade:
    def test_for_loop_exact_iteration_count(self):
        src = """
long main(void) {
    long s = 0;
    for (long i = 0; i < 17; i = i + 1) { s = s + i; }
    return 0;
}
"""
        b = open_binary(compile_source(src))
        h = count_loop_iterations(b, "main")
        m = _instrumented_run(b)
        assert h.read(m) == 17

    def test_nested_loops_counted_separately(self):
        src = """
long main(void) {
    long s = 0;
    for (long i = 0; i < 4; i = i + 1) {
        for (long j = 0; j < 5; j = j + 1) { s = s + 1; }
    }
    return s;
}
"""
        b = open_binary(compile_source(src))
        main = b.function("main")
        pts = points_for(main, PointType.LOOP_BACKEDGE)
        assert len(pts) == 2
        counters = []
        for i, pt in enumerate(pts):
            v = b.allocate_variable(f"loop{i}")
            b.insert(pt, IncrementVar(v))
            counters.append(v)
        m = _instrumented_run(b)
        counts = sorted(m.mem.read_int(v.address, 8) for v in counters)
        assert counts == [4, 20]


class TestEdgeTrampolineErrors:
    def test_edge_on_non_branch_rejected_at_commit(self):
        # Hand-build a bogus edge point on a non-branch block.
        from repro.patch.points import Point
        b = open_binary(compile_source(BRANCHY))
        fn = b.function("classify")
        entry = fn.entry_block
        if entry.last is not None and entry.last.is_conditional_branch:
            pytest.skip("entry block ends in a branch")
        bogus = Point(PointType.EDGE_TAKEN, entry.start, fn, entry)
        c = b.allocate_variable("c")
        b.insert(bogus, IncrementVar(c))
        with pytest.raises(PatchError):
            b.commit()
