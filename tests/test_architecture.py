"""Architectural invariants: the paper's Figure 2 component layering.

The import structure of the package must match the Dyninst component
graph: information flows from the binary-structure toolkits toward the
instrumentation toolkits, never backward (e.g. SymtabAPI must not
depend on PatchAPI).
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src" / "repro"

COMPONENTS = ["symtab", "instruction", "parse", "dataflow", "codegen",
              "patch", "proccontrol", "stackwalk", "tracing"]

ALLOWED = {
    "symtab": set(),
    "instruction": set(),
    "parse": {"instruction", "symtab", "dataflow"},
    "dataflow": {"instruction", "parse"},
    "codegen": {"dataflow", "instruction"},
    "patch": {"codegen", "dataflow", "parse", "instruction", "symtab"},
    "proccontrol": {"instruction", "symtab"},
    "stackwalk": {"dataflow", "parse", "proccontrol", "instruction"},
    # call-stack reconstruction / exporters consume raw event tuples and
    # symbol triples; they must not reach into parse/sim themselves
    "tracing": set(),
}


def _imports_of(component: str) -> set[str]:
    found: set[str] = set()
    for py in (SRC / component).rglob("*.py"):
        tree = ast.parse(py.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.level >= 2:
                    target = node.module.split(".")[0]
                elif node.module.startswith("repro."):
                    target = node.module.split(".")[1]
                else:
                    continue
                if target in COMPONENTS and target != component:
                    found.add(target)
    return found


@pytest.mark.parametrize("component", COMPONENTS)
def test_component_respects_figure2(component):
    illegal = _imports_of(component) - ALLOWED[component]
    assert not illegal, (
        f"{component} imports {sorted(illegal)}: not a Figure-2 arrow")


def test_no_component_imports_the_facade():
    for comp in COMPONENTS + ["riscv", "elf", "sim", "semantics",
                              "minicc", "telemetry"]:
        for py in (SRC / comp).rglob("*.py"):
            tree = ast.parse(py.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and node.module:
                    assert "api" != node.module.split(".")[0].replace(
                        "repro.", ""), f"{py} imports the facade"
                    assert not node.module.startswith("repro.api"), py


# Dependency leaves usable from any layer: the shared exception base,
# the telemetry registry and the fault-injection registry import nothing
# from the toolkits themselves (faults may reach the exception base).
CROSS_CUTTING = {"errors", "telemetry", "faults"}


def test_substrates_do_not_import_toolkits():
    """riscv/elf/sim are substrates: no upward dependencies except the
    documented ones (sim decodes instructions; elf knows nothing) and
    the cross-cutting leaves (errors, telemetry)."""
    for comp, allowed in (("riscv", set()), ("elf", {"riscv"}),
                          ("sim", {"riscv"})):
        for py in (SRC / comp).rglob("*.py"):
            tree = ast.parse(py.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and node.module:
                    if node.level >= 2:
                        target = node.module.split(".")[0]
                    elif node.module.startswith("repro."):
                        target = node.module.split(".")[1]
                    else:
                        continue
                    if target == comp or target in CROSS_CUTTING:
                        continue
                    assert target in allowed, (
                        f"substrate {comp} imports {target} ({py})")


def test_cross_cutting_modules_are_leaves():
    """errors/telemetry/faults may be imported from anywhere only
    because they import (almost) nothing from the package in return:
    errors and telemetry are pure leaves; faults may reach the shared
    exception base (its InjectedFault subclasses ReproError), nothing
    else."""
    allowed = {"errors.py": set(), "telemetry": set(),
               "faults.py": {"errors"}}
    for leaf, ok in allowed.items():
        path = SRC / leaf
        files = path.rglob("*.py") if path.is_dir() else [path]
        for py in files:
            tree = ast.parse(py.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom):
                    mod = node.module or ""
                    if mod.startswith("repro."):
                        target = mod.split(".")[1]
                    elif node.level >= 2 or (
                            node.level == 1 and path.is_file()):
                        target = mod.split(".")[0] if mod else ""
                    else:
                        continue
                    assert target in ok, (
                        f"{py} reaches outside the leaf: "
                        f"{mod or target!r}")
