"""Unit tests for the register model."""

import pytest

from repro.riscv.registers import (
    A0, CALLEE_SAVED, CALLER_SAVED, C_REG_INT, FP, INT_REGS, RA, RegClass,
    Register, S0, SP, ZERO, freg, is_c_encodable, lookup, names, xreg,
)


class TestRegisterModel:
    def test_thirty_two_int_regs(self):
        assert len(INT_REGS) == 32
        assert INT_REGS[0].name == "x0"
        assert INT_REGS[31].abi_name == "t6"

    def test_zero_register(self):
        assert ZERO.is_zero
        assert not RA.is_zero
        assert not freg(0).is_zero  # f0 is not the zero register

    def test_lookup_by_arch_and_abi_name(self):
        assert lookup("x10") is A0
        assert lookup("a0") is A0
        assert lookup("fp") is S0
        assert lookup("s0") is S0
        assert lookup("x8") is S0

    def test_lookup_case_insensitive(self):
        assert lookup("A0") is A0

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            lookup("x32")

    def test_frame_pointer_is_x8(self):
        assert FP.number == 8
        assert FP.regclass is RegClass.INT

    def test_fp_regs_distinct_from_int(self):
        assert freg(10) != xreg(10)
        assert freg(10).abi_name == "fa0"

    def test_calling_convention_partition(self):
        # Callee- and caller-saved sets are disjoint and (with zero/gp/tp)
        # cover the integer file.
        assert not (CALLEE_SAVED & CALLER_SAVED)
        covered = CALLEE_SAVED | CALLER_SAVED
        missing = set(INT_REGS) - covered
        assert names(missing) == ["gp", "tp", "zero"]

    def test_compressed_register_window(self):
        assert [r.number for r in C_REG_INT] == list(range(8, 16))
        assert is_c_encodable(xreg(8)) and is_c_encodable(xreg(15))
        assert not is_c_encodable(xreg(7)) and not is_c_encodable(xreg(16))

    def test_registers_hashable_and_ordered(self):
        assert xreg(1) < xreg(2)
        assert len({xreg(1), xreg(1), xreg(2)}) == 2
