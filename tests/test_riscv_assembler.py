"""Assembler/layout tests."""

import struct

import pytest

from repro.riscv import (
    AsmError, Assembler, RV64GC, RV64I, assemble, decode, decode_all,
)


def _disasm_all(program):
    return [(a, i.disasm()) for a, i in decode_all(program.text, program.text_base)]


class TestBasicAssembly:
    def test_single_instruction(self):
        p = assemble("addi a0, zero, 42\n")
        ins = decode(p.text)
        assert ins.mnemonic == "addi"
        assert ins.fields == {"rd": 10, "rs1": 0, "imm": 42}

    def test_memory_operand_syntax(self):
        p = assemble("ld a0, -8(sp)\n")
        assert decode(p.text).fields == {"rd": 10, "rs1": 2, "imm": -8}

    def test_store_syntax(self):
        p = assemble("sd a1, 16(s0)\n")
        assert decode(p.text).fields == {"rs2": 11, "rs1": 8, "imm": 16}

    def test_fp_load_store(self):
        p = assemble("fld fa0, 0(a0)\nfsd fa0, 8(a0)\n")
        ins = list(decode_all(p.text))
        assert ins[0][1].mnemonic == "fld"
        assert ins[1][1].mnemonic == "fsd"

    def test_amo_paren_syntax(self):
        p = assemble("amoadd.w a0, a1, (a2)\nlr.d a3, (a4)\n")
        ins = [i for _, i in decode_all(p.text)]
        assert ins[0].fields["rs1"] == 12
        assert ins[1].mnemonic == "lr.d"

    def test_branch_to_label(self):
        p = assemble("top:\naddi a0, a0, -1\nbnez a0, top\n")
        ins = [i for _, i in decode_all(p.text)]
        assert ins[1].mnemonic == "bne"
        assert ins[1].imm == -4

    def test_forward_branch(self):
        p = assemble("beq a0, a1, out\nnop\nout:\nret\n")
        ins = [i for _, i in decode_all(p.text)]
        assert ins[0].imm == 8

    def test_jal_with_explicit_rd(self):
        p = assemble("f:\njal s1, f\n")
        assert decode(p.text).fields == {"rd": 9, "imm": 0}

    def test_comments_stripped(self):
        p = assemble("addi a0, a0, 1 # trailing\n// whole line\n; also\n")
        assert len(p.text) == 4

    def test_unknown_mnemonic_reports_line(self):
        with pytest.raises(AsmError) as ei:
            assemble("nop\nfrobnicate a0\n")
        assert "line 2" in str(ei.value)

    def test_wrong_operand_count(self):
        with pytest.raises(AsmError):
            assemble("add a0, a1\n")

    def test_compressed_mnemonics(self):
        p = assemble("c.nop\nc.mv a0, a1\nc.ebreak\n")
        assert len(p.text) == 6
        ins = [i for _, i in decode_all(p.text)]
        assert [i.length for i in ins] == [2, 2, 2]
        assert ins[1].compressed_mnemonic == "c.mv"

    def test_c_j_to_label(self):
        p = assemble("start:\nc.nop\nc.j start\n")
        ins = [i for _, i in decode_all(p.text)]
        assert ins[1].mnemonic == "jal"
        assert ins[1].imm == -2


class TestPseudoInstructions:
    def test_ret(self):
        p = assemble("ret\n")
        assert decode(p.text).fields == {"rd": 0, "rs1": 1, "imm": 0}

    def test_mv_not_neg(self):
        p = assemble("mv a0, a1\nnot a2, a3\nneg a4, a5\n")
        ins = [i.mnemonic for _, i in decode_all(p.text)]
        assert ins == ["addi", "xori", "sub"]

    def test_set_comparisons(self):
        p = assemble("seqz a0, a1\nsnez a2, a3\nsltz a4, a5\nsgtz a6, a7\n")
        ins = [i.mnemonic for _, i in decode_all(p.text)]
        assert ins == ["sltiu", "sltu", "slt", "slt"]

    def test_swapped_branches(self):
        p = assemble("x:\nbgt a0, a1, x\nble a2, a3, x\n")
        ins = [i for _, i in decode_all(p.text)]
        assert ins[0].mnemonic == "blt"
        assert ins[0].fields["rs1"] == 11 and ins[0].fields["rs2"] == 10

    def test_li_variable_length(self):
        small = assemble("li a0, 5\n")
        wide = assemble("li a0, 0x123456789abcdef\n")
        assert len(small.text) == 4
        assert len(wide.text) > 8

    def test_la_is_auipc_addi(self):
        p = assemble(".data\nv: .dword 1\n.text\nla a0, v\n")
        ins = [i for _, i in decode_all(p.text)]
        assert [i.mnemonic for i in ins] == ["auipc", "addi"]

    def test_call_far_is_auipc_jalr(self):
        p = assemble("call.far f\nret\nf:\nret\n")
        ins = [i for _, i in decode_all(p.text)]
        assert [i.mnemonic for i in ins[:2]] == ["auipc", "jalr"]
        assert ins[1].fields["rd"] == 1

    def test_tail_far_uses_t1(self):
        p = assemble("tail.far f\nf:\nret\n")
        ins = [i for _, i in decode_all(p.text)]
        assert ins[0].fields["rd"] == 6
        # auipc at 0x10000 targeting f at 0x10008: hi=0, lo=8.
        assert ins[1].fields == {"rd": 0, "rs1": 6, "imm": 8}

    def test_fp_pseudos(self):
        p = assemble("fmv.d fa0, fa1\nfneg.s fa2, fa3\nfabs.d fa4, fa5\n")
        ins = [i.mnemonic for _, i in decode_all(p.text)]
        assert ins == ["fsgnj.d", "fsgnjn.s", "fsgnjx.d"]

    def test_csr_pseudos(self):
        p = assemble("csrr a0, cycle\nrdinstret a1\ncsrw fcsr, a2\n")
        ins = [i for _, i in decode_all(p.text)]
        assert ins[0].fields["csr"] == 0xC00
        assert ins[1].fields["csr"] == 0xC02
        assert ins[2].mnemonic == "csrrw"


class TestLayoutAndSymbols:
    def test_sections_placed_on_pages(self):
        p = assemble(".text\nnop\n.data\nd: .dword 7\n")
        assert p.data_base % 0x1000 == 0
        assert p.data_base >= p.text_base + len(p.text)

    def test_data_directives(self):
        p = assemble(
            '.data\nb: .byte 1, 2\nh: .half 0x1234\nw: .word -1\n'
            'd: .dword 0x1122334455667788\ns: .asciz "ab"\n')
        data = p.data
        assert data[0:2] == b"\x01\x02"
        assert data[2:4] == struct.pack("<H", 0x1234)
        assert data[4:8] == b"\xff\xff\xff\xff"
        assert data[8:16] == struct.pack("<Q", 0x1122334455667788)
        assert data[16:19] == b"ab\x00"

    def test_double_directive(self):
        p = assemble(".data\nx: .double 3.5, -1.25\n")
        assert struct.unpack("<2d", p.data[:16]) == (3.5, -1.25)

    def test_dword_with_symbol(self):
        # Jump tables store absolute code addresses in .data.
        p = assemble(".text\nf:\nret\n.data\ntable: .dword f\n")
        assert struct.unpack("<Q", p.data[:8])[0] == p.symbols["f"].address

    def test_align_directive(self):
        p = assemble(".data\n.byte 1\n.align 3\nx: .dword 2\n")
        assert p.symbols["x"].address % 8 == 0

    def test_bss_sizing(self):
        p = assemble(".bss\nbuf: .zero 4096\n")
        assert p.bss_size == 4096
        assert p.symbols["buf"].address == p.bss_base

    def test_entry_is_start_symbol(self):
        p = assemble("nop\n_start:\nret\n")
        assert p.entry == p.symbols["_start"].address

    def test_function_size_inferred(self):
        p = assemble(
            ".globl f\n.type f, @function\nf:\nnop\nnop\nret\n"
            ".type g, @function\ng:\nret\n")
        assert p.symbols["f"].size == 12
        assert p.symbols["g"].size == 4
        assert p.symbols["f"].is_global
        assert not p.symbols["g"].is_global

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            assemble("x:\nnop\nx:\nnop\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AsmError):
            assemble("j nowhere\n")

    def test_hi_lo_relocation_operators(self):
        # GNU-style %hi/%lo: lui+addi must reconstruct the address
        p = assemble(
            ".data\nv: .dword 1\n.text\n"
            "lui t0, %hi(v)\naddi t0, t0, %lo(v)\n")
        ins = [i for _, i in decode_all(p.text, p.text_base)]
        from repro.riscv.encoding import sign_extend
        hi = sign_extend(ins[0].fields["imm"], 20)
        lo = ins[1].fields["imm"]
        assert ((hi << 12) + lo) & 0xFFFFFFFFFFFFFFFF == \
            p.symbols["v"].address

    def test_symbol_plus_offset(self):
        p = assemble(".data\narr: .zero 16\n.text\nla a0, arr+8\n")
        ins = [i for _, i in decode_all(p.text)]
        auipc_imm = ins[0].fields["imm"]
        target = 0x10000 + (auipc_imm << 12) + ins[1].fields["imm"]
        assert target == p.symbols["arr"].address + 8


class TestAutoCompression:
    SRC = """
.type f, @function
f:
  addi sp, sp, -32
  sd ra, 0(sp)
  sd a0, 16(sp)
  ld t0, 16(sp)
  addi t0, t0, 5
  mv a0, t0
  ld ra, 0(sp)
  addi sp, sp, 32
  ret
"""

    def test_compression_shrinks_and_preserves(self):
        from repro.sim import Machine
        plain = assemble("_start:\n li a0, 2\n call f\n li a7, 93\n ecall\n"
                         + self.SRC)
        dense = assemble("_start:\n li a0, 2\n call f\n li a7, 93\n ecall\n"
                         + self.SRC, compress=True)
        assert len(dense.text) < len(plain.text)
        from repro.sim import run_program
        _, e0 = run_program(plain)
        _, e1 = run_program(dense)
        assert e0.exit_code == e1.exit_code == 7

    def test_compressed_forms_used(self):
        p = assemble(self.SRC, compress=True)
        kinds = {i.compressed_mnemonic for _, i in decode_all(p.text, p.text_base)
                 if i.length == 2}
        # sp-based save/restore and ALU ops compress
        assert "c.sdsp" in kinds or "c.swsp" in kinds
        assert "c.ldsp" in kinds
        assert "c.addi" in kinds or "c.addi16sp" in kinds
        assert "c.mv" in kinds
        assert "c.jr" in kinds  # ret

    def test_label_dependent_instructions_never_compressed(self):
        # branches/jumps to labels must stay 4-byte (no relaxation)
        p = assemble("""
f:
  beqz a0, out
  j f
out:
  ret
""", compress=True)
        ins = [i for _, i in decode_all(p.text, p.text_base)]
        assert ins[0].length == 4  # beq
        assert ins[1].length == 4  # jal

    def test_compress_requires_c_extension(self):
        from repro.riscv.extensions import RV64G
        p = assemble(self.SRC, compress=True, arch=RV64G)
        assert all(i.length == 4
                   for _, i in decode_all(p.text, p.text_base))

    def test_symbolic_immediates_not_compressed(self):
        p = assemble(".data\nv: .dword 1\n.text\nlui t0, %hi(v)\n",
                     compress=True)
        assert decode(p.text).length == 4


class TestExtensionChecking:
    def test_rv64i_rejects_mul(self):
        with pytest.raises(AsmError) as ei:
            assemble("mul a0, a1, a2\n", arch=RV64I)
        assert "extension" in str(ei.value)

    def test_rv64gc_accepts_everything(self):
        assemble("mul a0, a1, a2\nfadd.d fa0, fa1, fa2\nlr.w a0, (a1)\n",
                 arch=RV64GC)

    def test_program_records_arch(self):
        p = assemble("nop\n", arch=RV64I)
        assert p.arch is RV64I
