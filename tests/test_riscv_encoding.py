"""Unit tests for bit-level encoding helpers."""

import pytest

from repro.riscv.encoding import (
    EncodingError, bit, bits, decode_imm_b, decode_imm_i, decode_imm_j,
    decode_imm_s, decode_imm_u, encode_imm_b, encode_imm_i, encode_imm_j,
    encode_imm_s, encode_imm_u, fits_signed, fits_unsigned,
    instruction_length, is_compressed, sign_extend, to_unsigned,
)


class TestBitHelpers:
    def test_bits_extracts_inclusive_range(self):
        assert bits(0b1011_0100, 5, 2) == 0b1101

    def test_bit_single(self):
        assert bit(0b100, 2) == 1
        assert bit(0b100, 1) == 0

    def test_sign_extend_positive(self):
        assert sign_extend(0x7FF, 12) == 0x7FF

    def test_sign_extend_negative(self):
        assert sign_extend(0x800, 12) == -2048
        assert sign_extend(0xFFF, 12) == -1

    def test_sign_extend_masks_upper_bits(self):
        assert sign_extend(0x1FFF, 12) == -1

    def test_to_unsigned_roundtrip(self):
        assert sign_extend(to_unsigned(-5, 64), 64) == -5

    def test_fits_signed_bounds(self):
        assert fits_signed(2047, 12)
        assert fits_signed(-2048, 12)
        assert not fits_signed(2048, 12)
        assert not fits_signed(-2049, 12)

    def test_fits_unsigned_bounds(self):
        assert fits_unsigned(0, 5) and fits_unsigned(31, 5)
        assert not fits_unsigned(32, 5) and not fits_unsigned(-1, 5)


class TestImmediateFormats:
    @pytest.mark.parametrize("imm", [0, 1, -1, 2047, -2048, 42, -77])
    def test_i_roundtrip(self, imm):
        assert decode_imm_i(encode_imm_i(imm)) == imm

    def test_i_overflow(self):
        with pytest.raises(EncodingError):
            encode_imm_i(2048)

    @pytest.mark.parametrize("imm", [0, 4, -4, 2047, -2048])
    def test_s_roundtrip(self, imm):
        assert decode_imm_s(encode_imm_s(imm)) == imm

    @pytest.mark.parametrize("imm", [0, 2, -2, 4094, -4096, 1024])
    def test_b_roundtrip(self, imm):
        assert decode_imm_b(encode_imm_b(imm)) == imm

    def test_b_rejects_odd(self):
        with pytest.raises(EncodingError):
            encode_imm_b(3)

    def test_b_rejects_out_of_range(self):
        with pytest.raises(EncodingError):
            encode_imm_b(4096)

    @pytest.mark.parametrize("imm", [0, 1, -1, 0x7FFFF, -0x80000])
    def test_u_roundtrip(self, imm):
        assert decode_imm_u(encode_imm_u(imm)) == imm

    def test_u_accepts_unsigned_20(self):
        # 0xFFFFF as unsigned field decodes as -1 (sign-extended field).
        assert decode_imm_u(encode_imm_u(0xFFFFF)) == -1

    @pytest.mark.parametrize("imm", [0, 2, -2, 0xFFFFE, -0x100000, 2048])
    def test_j_roundtrip(self, imm):
        assert decode_imm_j(encode_imm_j(imm)) == imm

    def test_j_rejects_odd(self):
        with pytest.raises(EncodingError):
            encode_imm_j(1)


class TestLengthDetection:
    def test_standard_word_low_bits_11(self):
        assert not is_compressed(0x0000_0033)
        assert instruction_length(0x33) == 4

    def test_compressed_low_bits(self):
        for low in (0b00, 0b01, 0b10):
            assert is_compressed(low)
            assert instruction_length(low) == 2
