"""Property test: arbitrary *combinations* of instrumentation must
compose safely.

For random programs, a random subset of point types (entry, exits, call
sites, block entries, taken/not-taken edges, loop back edges) is
instrumented simultaneously with counters — interactions between
trampolines at adjacent/identical addresses are where patching systems
break, so this stresses exactly that.  Program behaviour must be
unchanged and basic counter invariants must hold.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source
from repro.patch import PatchConflict, PointType
from repro.sim import StopReason
from strategies import minic_program

POINT_TYPES = [
    PointType.FUNC_ENTRY, PointType.FUNC_EXIT, PointType.CALL_SITE,
    PointType.BLOCK_ENTRY, PointType.EDGE_TAKEN,
    PointType.EDGE_NOT_TAKEN, PointType.LOOP_BACKEDGE,
]


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(source=minic_program(),
       chosen=st.sets(st.sampled_from(POINT_TYPES), min_size=1,
                      max_size=4))
def test_random_point_combinations_preserve_behaviour(source, chosen):
    program = compile_source(source)
    base = open_binary(program)
    m0, ev0 = base.run_instrumented(max_steps=2_000_000)
    assert ev0.reason is StopReason.EXITED

    b = open_binary(program)
    counters = {}
    for ptype in sorted(chosen, key=lambda p: p.value):
        var = b.allocate_variable(f"c${ptype.value}")
        counters[ptype] = var
        for fn in b.functions():
            if not (fn.name.startswith("f") or fn.name == "main"):
                continue
            for pt in b.points(fn, ptype):
                b.insert(pt, IncrementVar(var))
    try:
        m1, ev1 = b.run_instrumented(max_steps=5_000_000)
    except PatchConflict:
        # overlapping springboard slots are a legal refusal, not a bug
        return
    assert ev1.reason is StopReason.EXITED, (source, chosen)
    assert bytes(m1.stdout) == bytes(m0.stdout), (source, chosen)
    assert ev1.exit_code == ev0.exit_code

    # invariants between counter families
    def read(pt):
        return m1.mem.read_int(counters[pt].address, 8)

    if PointType.FUNC_ENTRY in chosen and PointType.FUNC_EXIT in chosen:
        assert read(PointType.FUNC_ENTRY) == read(PointType.FUNC_EXIT)
    if PointType.FUNC_ENTRY in chosen and PointType.BLOCK_ENTRY in chosen:
        assert read(PointType.BLOCK_ENTRY) >= read(PointType.FUNC_ENTRY)
    if PointType.EDGE_TAKEN in chosen and \
            PointType.EDGE_NOT_TAKEN in chosen and \
            PointType.BLOCK_ENTRY in chosen:
        # every branch execution went one way or the other, and branches
        # are a subset of block executions
        assert read(PointType.EDGE_TAKEN) + \
            read(PointType.EDGE_NOT_TAKEN) <= read(PointType.BLOCK_ENTRY)
