"""Edge-case and error-path hardening tests across modules."""

import pytest

from repro.elf import read_elf, write_program
from repro.minicc import compile_source, fib_source
from repro.parse import parse_binary
from repro.patch.rewriter import _parse_trap_blob, _trap_blob
from repro.proccontrol import Process
from repro.riscv import AsmError, assemble, decode, decode_all
from repro.sim import Machine, MemoryFault, P550, X86PROXY
from repro.sim.timing import UCYCLE, category_of
from repro.symtab import Symtab


class TestAssemblerEdgeCases:
    def test_jalr_three_operand_form(self):
        p = assemble("jalr a0, t0, 4\n")
        ins = decode(p.text)
        assert ins.fields == {"rd": 10, "rs1": 5, "imm": 4}

    def test_jalr_single_register_form(self):
        p = assemble("jalr t2\n")
        assert decode(p.text).fields == {"rd": 1, "rs1": 7, "imm": 0}

    def test_balign_and_skip(self):
        p = assemble(".data\n.byte 1\n.balign 16\nx: .skip 3\ny: .byte 9\n")
        assert p.symbols["x"].address % 16 == 0
        assert p.symbols["y"].address == p.symbols["x"].address + 3

    def test_string_escapes(self):
        p = assemble('.data\ns: .asciz "a\\nb\\t"\n')
        assert p.data[:5] == b"a\nb\t\x00"

    def test_ascii_no_nul(self):
        p = assemble('.data\ns: .ascii "ab"\nt: .byte 7\n')
        assert p.data[:3] == b"ab\x07"

    def test_negative_word(self):
        p = assemble(".data\nw: .word -2\n")
        assert p.data[:4] == b"\xfe\xff\xff\xff"

    def test_empty_program(self):
        p = assemble("\n# only a comment\n")
        assert p.text == b""

    def test_branch_out_of_range_rejected(self):
        src = "f:\n" + "nop\n" * 1200 + "beq a0, a1, f\n"
        with pytest.raises(AsmError):
            assemble(src)

    def test_call_out_of_range_suggests_far(self):
        # simulate by using a raw big offset
        with pytest.raises(AsmError) as ei:
            assemble("call 0x200000\n")
        assert "far" in str(ei.value)

    def test_ignored_directives_accepted(self):
        assemble(".option norvc\n.file \"x.c\"\nnop\n.cfi_startproc\n")


class TestDisasmFormats:
    def test_memory_style(self):
        from repro.riscv.encoder import make
        assert make("ld", rd=10, rs1=2, imm=-8).disasm() == "ld a0, -8(sp)"
        assert make("sd", rs2=1, rs1=8, imm=16).disasm() == "sd ra, 16(s0)"
        assert make("fld", rd=5, rs1=10, imm=0).disasm() == "fld ft5, 0(a0)"

    def test_compressed_marker(self):
        from repro.riscv.compressed import decode_compressed, encode_c_mv
        ins = decode_compressed(encode_c_mv(10, 11))
        assert ins.disasm().startswith("c.mv")

    def test_csr_hex(self):
        from repro.riscv.encoder import make
        text = make("csrrs", rd=10, csr=0xC00, rs1=0).disasm()
        assert "0xc00" in text


class TestSimulatorEdgeCases:
    def test_memory_introspection(self):
        m = Machine()
        assert m.mem.mapped_pages() == 0
        m.mem.map_region(0x5000, 1)
        assert m.mem.is_mapped(0x5000)
        assert not m.mem.is_mapped(0x6000)
        assert m.mem.mapped_pages() == 1

    def test_truncated_fetch_faults(self):
        m = Machine()
        m.mem.map_region(0x1000, 0x1000)
        # place a 4-byte instruction header at the very end of mapping
        m.mem.write_int(0x1FFE, 2, 0x0033 | 3)  # low bits 11 -> 32-bit
        m.pc = 0x1FFE
        ev = m.step()
        assert ev is not None and ev.reason.value == "fault"

    def test_misaligned_reads_ok(self):
        # RV64GC hardware supports misaligned loads; so do we.
        m = Machine()
        m.mem.map_region(0x1000, 0x100)
        m.mem.write_int(0x1001, 8, 0x1122334455667788)
        assert m.mem.read_int(0x1001, 8) == 0x1122334455667788

    def test_timing_category_coverage(self):
        from repro.riscv.opcodes import all_specs
        for spec in all_specs():
            cat = category_of(spec.mnemonic, spec.match & 0x7F)
            assert P550.ucycles(cat) >= 1
            assert X86PROXY.ucycles(cat) >= 1

    def test_timing_conversions(self):
        assert P550.seconds(UCYCLE * int(1.4e9)) == pytest.approx(1.0)
        # nanoseconds is an integer (rounded)
        assert P550.nanoseconds(UCYCLE * 14) == 10

    def test_fault_includes_address(self):
        m = Machine()
        with pytest.raises(MemoryFault) as ei:
            m.mem.read_int(0xABCD000, 8)
        assert "0xabcd000" in str(ei.value)


class TestRewriterBlob:
    def test_trap_blob_roundtrip(self):
        table = {0x1000: 0x2000, 0x1F00: 0xFFFF_FFFF_0000}
        assert _parse_trap_blob(_trap_blob(table)) == table

    def test_empty_blob(self):
        assert _parse_trap_blob(b"") == {}


class TestProcControlEdgeCases:
    def test_read_memory_masks_multiple_breakpoints(self):
        p = assemble("_start:\nnop\nnop\nnop\nli a7, 93\necall\n")
        st = Symtab.from_program(p)
        proc = Process.create(st)
        original = proc.read_memory(st.entry, 12)
        proc.insert_breakpoint(st.entry)
        proc.insert_breakpoint(st.entry + 8)
        assert proc.read_memory(st.entry, 12) == original
        # partial overlap reads too
        assert proc.read_memory(st.entry + 2, 8) == original[2:10]

    def test_duplicate_breakpoint_insert(self):
        p = assemble("_start:\nnop\nli a7, 93\necall\n")
        proc = Process.create(Symtab.from_program(p))
        b1 = proc.insert_breakpoint(p.entry)
        b2 = proc.insert_breakpoint(p.entry)
        assert b1 is b2

    def test_remove_nonexistent_breakpoint(self):
        p = assemble("_start:\nnop\nli a7, 93\necall\n")
        proc = Process.create(Symtab.from_program(p))
        proc.remove_breakpoint(0xDEAD)  # no-op


class TestParserEdgeCases:
    def test_block_targets_helper(self):
        from repro.parse import EdgeType
        co = parse_binary(Symtab.from_program(
            compile_source(fib_source(5))))
        fib = co.function_by_name("fib")
        entry = fib.entry_block
        assert entry.targets()  # some successors
        taken = entry.targets(EdgeType.COND_TAKEN)
        assert all(isinstance(t, int) for t in taken)

    def test_function_size(self):
        co = parse_binary(Symtab.from_program(
            compile_source(fib_source(5))))
        fib = co.function_by_name("fib")
        assert fib.size > 0
        assert fib.size % 2 == 0

    def test_decode_all_on_elf_text(self):
        blob = write_program(compile_source(fib_source(4)))
        elf = read_elf(blob)
        text = elf.section(".text")
        count = sum(1 for _ in decode_all(text.data, text.addr))
        assert count > 20

    def test_empty_code_object_queries(self):
        p = assemble(".data\nx: .dword 1\n")
        co = parse_binary(Symtab.from_program(p))
        assert co.function_containing(0x9999) is None
        assert co.block_containing(0x9999) is None
        assert co.covered_ranges() == []
