"""Simulator tests: memory, execution, syscalls, timing, debug port."""

import pytest

from repro.riscv import assemble
from repro.sim import (
    Machine, MemoryFault, P550, StopReason, UCYCLE, X86PROXY, run_program,
)
from repro.sim.memory import Memory


class TestMemory:
    def test_roundtrip_int(self):
        m = Memory()
        m.map_region(0x1000, 0x100)
        m.write_int(0x1008, 8, 0x1122334455667788)
        assert m.read_int(0x1008, 8) == 0x1122334455667788
        assert m.read_int(0x1008, 4) == 0x55667788  # little-endian

    def test_cross_page_access(self):
        m = Memory()
        m.map_region(0x0, 0x3000)
        m.write_int(0xFFE, 8, 0xAABBCCDDEEFF0011)
        assert m.read_int(0xFFE, 8) == 0xAABBCCDDEEFF0011

    def test_unmapped_faults(self):
        m = Memory()
        with pytest.raises(MemoryFault):
            m.read_int(0xDEAD000, 4)

    def test_write_wraps_value(self):
        m = Memory()
        m.map_region(0, 16)
        m.write_int(0, 1, 0x1FF)
        assert m.read_int(0, 1) == 0xFF

    def test_bytes_roundtrip_cross_page(self):
        m = Memory()
        m.map_region(0, 0x3000)
        blob = bytes(range(256)) * 20
        m.write_bytes(0xF80, blob)
        assert m.read_bytes(0xF80, len(blob)) == blob


def _run(src, timing=P550, max_steps=1_000_000):
    p = assemble(src)
    m, ev = run_program(p, timing=timing, max_steps=max_steps)
    return m, ev


class TestExecution:
    def test_exit_code(self):
        _, ev = _run("_start:\nli a0, 42\nli a7, 93\necall\n")
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == 42

    def test_arithmetic_loop(self):
        m, ev = _run("""
_start:
  li a0, 100
  li a1, 0
loop:
  add a1, a1, a0
  addi a0, a0, -1
  bnez a0, loop
  mv a0, a1
  li a7, 93
  ecall
""")
        assert ev.exit_code == 5050 & 0xFF

    def test_memory_ops(self):
        m, ev = _run("""
_start:
  la a0, buf
  li a1, -7
  sd a1, 0(a0)
  lw a2, 0(a0)      # sign-extended low word
  lbu a3, 7(a0)     # top byte unsigned
  sub a0, a2, a1    # 0 if lw sign-extended correctly
  add a0, a0, a3
  addi a0, a0, -255
  li a7, 93
  ecall
.data
buf: .zero 8
""")
        assert ev.exit_code == 0

    def test_mul_div(self):
        _, ev = _run("""
_start:
  li a0, -100
  li a1, 7
  div a2, a0, a1     # -14
  rem a3, a0, a1     # -2
  mul a4, a2, a1     # -98
  add a0, a4, a3     # -100
  sub a0, a0, a0
  li a7, 93
  ecall
""")
        assert ev.exit_code == 0

    def test_div_by_zero_architectural(self):
        _, ev = _run("""
_start:
  li a0, 5
  li a1, 0
  divu a2, a0, a1    # all-ones
  addi a2, a2, 1     # 0
  rem a3, a0, a1     # 5 (dividend)
  add a0, a2, a3
  li a7, 93
  ecall
""")
        assert ev.exit_code == 5

    def test_compressed_instructions_execute(self):
        _, ev = _run("""
_start:
  c.li a0, 5
  c.addi a0, 3
  c.mv a1, a0
  c.nop
  add a0, a0, a1
  li a7, 93
  ecall
""")
        assert ev.exit_code == 16

    def test_double_precision(self):
        _, ev = _run("""
_start:
  la a0, vals
  fld fa0, 0(a0)
  fld fa1, 8(a0)
  fmul.d fa2, fa0, fa1   # 2.5 * 4.0 = 10.0
  fcvt.l.d a0, fa2
  li a7, 93
  ecall
.data
vals: .double 2.5, 4.0
""")
        assert ev.exit_code == 10

    def test_single_precision_nanboxed(self):
        _, ev = _run("""
_start:
  li a0, 3
  fcvt.s.w fa0, a0
  fcvt.s.w fa1, a0
  fadd.s fa2, fa0, fa1
  fcvt.w.s a0, fa2
  li a7, 93
  ecall
""")
        assert ev.exit_code == 6

    def test_fp_compare_and_sqrt(self):
        _, ev = _run("""
_start:
  li a0, 16
  fcvt.d.w fa0, a0
  fsqrt.d fa1, fa0
  fcvt.w.d a0, fa1
  li a1, 2
  fcvt.d.w fa2, a1
  flt.d a2, fa2, fa1    # 2.0 < 4.0 -> 1
  add a0, a0, a2
  li a7, 93
  ecall
""")
        assert ev.exit_code == 5

    def test_amo_and_lrsc(self):
        _, ev = _run("""
_start:
  la a0, cell
  li a1, 5
  amoadd.w a2, a1, (a0)   # old=10, cell=15
  lr.w a3, (a0)           # 15
  li a4, 99
  sc.w a5, a4, (a0)       # success -> 0, cell=99
  lw a6, 0(a0)
  add a0, a2, a3          # 25
  add a0, a0, a5          # 25
  add a0, a0, a6          # 124
  li a7, 93
  ecall
.data
cell: .word 10
""")
        assert ev.exit_code == 124

    def test_jump_and_link(self):
        _, ev = _run("""
_start:
  li a0, 1
  call bump
  call bump
  li a7, 93
  ecall
bump:
  addi a0, a0, 10
  ret
""")
        assert ev.exit_code == 21

    def test_stack_usable(self):
        _, ev = _run("""
_start:
  addi sp, sp, -16
  li a0, 7
  sd a0, 8(sp)
  li a0, 0
  ld a0, 8(sp)
  addi sp, sp, 16
  li a7, 93
  ecall
""")
        assert ev.exit_code == 7

    def test_fault_on_wild_store(self):
        _, ev = _run("""
_start:
  li a0, 0x40000000
  sd zero, 0(a0)
""")
        assert ev.reason is StopReason.FAULT
        assert "fault" in ev.fault

    def test_steps_exhausted(self):
        _, ev = _run("_start:\nj _start\n", max_steps=100)
        assert ev.reason is StopReason.STEPS_EXHAUSTED

    def test_ebreak_stops_with_pc_at_breakpoint(self):
        p = assemble("_start:\nnop\nebreak\nnop\n")
        m = Machine()
        m.load_program(p)
        ev = m.run()
        assert ev.reason is StopReason.BREAKPOINT
        assert ev.pc == p.entry + 4
        assert m.pc == p.entry + 4  # pc stays at the ebreak

    def test_zicond_executes(self):
        from repro.riscv.extensions import RVA23_SUBSET
        p = assemble("""
_start:
  li a1, 5
  li a2, 0
  czero.eqz a0, a1, a2   # rs2==0 -> 0
  li a2, 1
  czero.eqz a3, a1, a2   # rs2!=0 -> a1
  add a0, a0, a3
  li a7, 93
  ecall
""", arch=RVA23_SUBSET)
        _, ev = run_program(p)
        assert ev.exit_code == 5


class TestSyscalls:
    def test_write_captured(self):
        m, ev = _run("""
_start:
  li a7, 64
  li a0, 1
  la a1, msg
  li a2, 5
  ecall
  li a7, 93
  li a0, 0
  ecall
.data
msg: .asciz "hello"
""")
        assert bytes(m.stdout) == b"hello"

    def test_clock_gettime_succeeds(self):
        m, ev = _run("""
_start:
  li a7, 113
  li a0, 1
  la a1, ts
  ecall
  mv s0, a0      # return value (0 on success)
  li a7, 93
  mv a0, s0
  ecall
.data
ts: .zero 16
""", max_steps=100)
        assert ev.reason is StopReason.EXITED
        assert ev.exit_code == 0

    def test_clock_gettime_value_matches_timing_model(self):
        src = """
_start:
  li a7, 113
  li a0, 1
  la a1, ts
  ecall
  ld a0, 8(a1)        # tv_nsec
  li a7, 93
  ecall
.data
ts: .zero 16
"""
        p = assemble(src)
        m = Machine(P550)
        m.load_program(p)
        ev = m.run()
        # exit code is tv_nsec & 0xff; just confirm the full value in memory
        ns = m.mem.read_int(p.symbols["ts"].address + 8, 8)
        assert ns == pytest.approx(m.timing.nanoseconds(m.ucycles), abs=100)

    def test_unknown_syscall_faults(self):
        _, ev = _run("_start:\nli a7, 999\necall\n")
        assert ev.reason is StopReason.FAULT


class TestTimingModels:
    def test_cycle_csr_advances(self):
        m, _ = _run("""
_start:
  csrr s0, cycle
  nop
  nop
  csrr s1, cycle
  sub a0, s1, s0
  li a7, 93
  ecall
""")
        assert m.exit_code >= 2

    def test_x86proxy_faster_wallclock(self):
        src = """
_start:
  li a0, 10000
loop:
  addi a0, a0, -1
  bnez a0, loop
  li a7, 93
  ecall
"""
        m1, _ = _run(src, timing=P550)
        m2, _ = _run(src, timing=X86PROXY)
        assert m1.instret == m2.instret  # same dynamic path
        assert m2.simulated_seconds() < m1.simulated_seconds() / 4

    def test_determinism(self):
        src = "_start:\nli a0, 3\nli a7, 93\necall\n"
        m1, _ = _run(src)
        m2, _ = _run(src)
        assert m1.ucycles == m2.ucycles
        assert m1.instret == m2.instret


class TestDebugPort:
    def test_reg_access(self):
        m = Machine()
        m.load_program(assemble("_start:\nnop\n"))
        m.set_reg(10, 0x1234)
        assert m.get_reg(10) == 0x1234
        m.set_reg(0, 5)
        assert m.get_reg(0) == 0

    def test_code_patching_invalidates_closures(self):
        # Execute an addi, patch it to a different addi, re-execute:
        # the machine must honour the new bytes (icache invalidation).
        from repro.riscv import encode
        p = assemble("_start:\nli a0, 1\nli a7, 93\necall\n")
        m = Machine()
        m.load_program(p)
        assert m.step() is None  # executes li a0, 1
        m.pc = p.entry           # rewind
        new = encode("addi", rd=10, rs1=0, imm=77).to_bytes(4, "little")
        m.write_mem(p.entry, new)
        ev = m.run()
        assert ev.exit_code == 77

    def test_breakpoint_insert_resume_cycle(self):
        from repro.riscv import encode
        p = assemble("_start:\nli a0, 5\naddi a0, a0, 1\nli a7, 93\necall\n")
        m = Machine()
        m.load_program(p)
        bp_addr = p.entry + 4
        orig = m.read_mem(bp_addr, 4)
        m.write_mem(bp_addr, encode("ebreak").to_bytes(4, "little"))
        ev = m.run()
        assert ev.reason is StopReason.BREAKPOINT and ev.pc == bp_addr
        m.write_mem(bp_addr, orig)  # restore and resume
        ev = m.run()
        assert ev.reason is StopReason.EXITED and ev.exit_code == 6
