"""Tests for the CLI tools (objdump, minicc driver) and dynamic
instrumentation removal."""

import pytest

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source, compile_to_elf, fib_source
from repro.minicc.__main__ import main as minicc_main
from repro.patch import PatchError, PointType
from repro.proccontrol import EventType, Process
from repro.sim import Machine, StopReason
from repro.tools.objdump import (
    format_cfg, format_disassembly, format_header, format_symbols,
    main as objdump_main,
)


@pytest.fixture
def elf_file(tmp_path):
    path = tmp_path / "fib.elf"
    path.write_bytes(compile_to_elf(fib_source(8)))
    return path


class TestObjdump:
    def test_header(self, elf_file, capsys):
        assert objdump_main(["-f", str(elf_file)]) == 0
        out = capsys.readouterr().out
        assert "rv64imafdc" in out
        assert ".text" in out and "CODE" in out

    def test_disassembly(self, elf_file, capsys):
        assert objdump_main(["-d", str(elf_file)]) == 0
        out = capsys.readouterr().out
        assert "<fib>" in out
        assert "addi sp, sp," in out
        assert "jalr" in out or "ret" in out

    def test_symbols(self, elf_file, capsys):
        assert objdump_main(["--symbols", str(elf_file)]) == 0
        out = capsys.readouterr().out
        assert "fib" in out and "main" in out

    def test_cfg(self, elf_file, capsys):
        assert objdump_main(["--cfg", str(elf_file)]) == 0
        out = capsys.readouterr().out
        assert "blocks" in out
        assert "cond-taken" in out
        assert "call->" in out

    def test_frames(self, elf_file, capsys):
        assert objdump_main(["--frames", str(elf_file)]) == 0
        out = capsys.readouterr().out
        assert "frame" in out and "ra slot" in out
        assert "fib" in out and "sp-" in out

    def test_mix(self, elf_file, capsys):
        assert objdump_main(["--mix", str(elf_file)]) == 0
        out = capsys.readouterr().out
        assert "insns" in out and "arithmetic" in out and "RVC" in out

    def test_default_mode(self, elf_file, capsys):
        assert objdump_main([str(elf_file)]) == 0
        out = capsys.readouterr().out
        assert "entry point" in out and "<fib>" in out

    def test_format_helpers_direct(self):
        from repro.symtab import Symtab
        st = Symtab.from_bytes(compile_to_elf(fib_source(5)))
        assert "fib" in format_symbols(st)
        assert "Disassembly" in format_disassembly(st)
        assert "blocks" in format_cfg(st)
        assert "architecture" in format_header(st)


class TestMiniccCLI:
    def test_compile_to_file(self, tmp_path, capsys):
        src = tmp_path / "p.c"
        src.write_text("long main(void) { return 7; }")
        out = tmp_path / "p.elf"
        assert minicc_main([str(src), "-o", str(out)]) == 0
        assert out.stat().st_size > 0
        from repro.symtab import Symtab
        assert Symtab.from_bytes(out.read_bytes()).isa.supports("c")

    def test_emit_asm(self, tmp_path, capsys):
        src = tmp_path / "p.c"
        src.write_text("long main(void) { return 1 + 2; }")
        assert minicc_main([str(src), "-S"]) == 0
        out = capsys.readouterr().out
        assert ".globl main" in out

    def test_run(self, tmp_path, capsys):
        src = tmp_path / "p.c"
        src.write_text(
            "long main(void) { print_long(99); return 3; }")
        assert minicc_main([str(src), "--run"]) == 3
        assert capsys.readouterr().out == "99\n"

    def test_no_action_errors(self, tmp_path):
        src = tmp_path / "p.c"
        src.write_text("long main(void) { return 0; }")
        assert minicc_main([str(src)]) == 2


class TestInstrumentationRemoval:
    def test_remove_stops_counting(self):
        """Counter advances while instrumented, freezes after removal,
        and the program still completes correctly."""
        b = open_binary(compile_source(fib_source(10)))
        c = b.allocate_variable("calls")
        b.insert(b.points("fib", PointType.FUNC_ENTRY), IncrementVar(c))
        res = b.commit()

        proc = Process.create(b.symtab)
        res.apply_to_machine(proc.machine)
        # run partway: stop at an early breakpoint in main
        main_fn = b.function("main")
        # use a call-site in main as a stop point after some fib calls
        proc.insert_breakpoint(
            b.function("main").call_sites()[-1].last.address)
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        mid = proc.machine.mem.read_int(c.address, 8)
        assert mid > 0

        res.remove_from_machine(proc.machine)
        proc.remove_breakpoint(ev.pc)
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        assert bytes(proc.machine.stdout).startswith(b"55\n")
        # counter froze at removal time
        assert proc.machine.mem.read_int(c.address, 8) == mid

    def test_remove_and_reapply(self):
        b = open_binary(compile_source(fib_source(8)))
        c = b.allocate_variable("calls")
        b.insert(b.points("fib", PointType.FUNC_ENTRY), IncrementVar(c))
        res = b.commit()
        m = Machine()
        b.symtab.load_into(m)
        res.apply_to_machine(m)
        res.remove_from_machine(m)
        res.apply_to_machine(m)
        ev = m.run(max_steps=5_000_000)
        assert ev.reason is StopReason.EXITED
        assert m.mem.read_int(c.address, 8) == 67

    def test_removed_text_matches_original(self):
        b = open_binary(compile_source(fib_source(5)))
        c = b.allocate_variable("calls")
        b.insert(b.points("fib", PointType.FUNC_ENTRY), IncrementVar(c))
        res = b.commit()
        m = Machine()
        b.symtab.load_into(m)
        original = m.read_mem(res.text_base, len(res.text))
        res.apply_to_machine(m)
        assert m.read_mem(res.text_base, len(res.text)) != original
        res.remove_from_machine(m)
        assert m.read_mem(res.text_base, len(res.text)) == original
