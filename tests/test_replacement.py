"""Function replacement and call retargeting tests (the "modifying"
part of §1: binary instrumentation can insert, delete, *or modify*
instructions)."""

import pytest

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source
from repro.patch import PatchError, PointType
from repro.sim import StopReason

SRC = """
long slow_double(long x) {
    long r = 0;
    for (long i = 0; i < x; i = i + 1) { r = r + 2; }
    return r;
}

long fast_double(long x) {
    return x * 2;
}

long other(long x) {
    return x + 100;
}

long main(void) {
    long a = slow_double(21);      // 42 either way
    long b = other(5);             // 105, or 10 if retargeted
    print_long(a);
    print_long(b);
    return 0;
}
"""


def run(binary):
    m, ev = binary.run_instrumented()
    assert ev.reason is StopReason.EXITED, ev
    return bytes(m.stdout).decode().split()


class TestFunctionReplacement:
    def test_replace_function_same_semantics(self):
        b = open_binary(compile_source(SRC))
        b.replace_function("slow_double", "fast_double")
        out = run(b)
        assert out == ["42", "105"]

    def test_replacement_actually_diverts(self):
        """Count entries of both bodies: old body must never run."""
        b = open_binary(compile_source(SRC))
        slow_bb = b.allocate_variable("slow_hits")
        fast_bb = b.allocate_variable("fast_hits")
        # count a *non-entry* block of slow_double (the entry block is
        # consumed by the redirect springboard itself)
        slow = b.function("slow_double")
        inner = [p for p in b.points(slow, PointType.BLOCK_ENTRY)
                 if p.address != slow.entry]
        assert inner
        b.insert(inner, IncrementVar(slow_bb))
        b.insert(b.points("fast_double", PointType.FUNC_ENTRY),
                 IncrementVar(fast_bb))
        b.replace_function("slow_double", "fast_double")
        m, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert m.mem.read_int(slow_bb.address, 8) == 0
        assert m.mem.read_int(fast_bb.address, 8) == 1

    def test_replace_with_different_semantics(self):
        b = open_binary(compile_source(SRC))
        b.replace_function("other", "fast_double")
        out = run(b)
        assert out == ["42", "10"]  # other(5) became fast_double(5)

    def test_double_redirect_rejected(self):
        b = open_binary(compile_source(SRC))
        b.replace_function("other", "fast_double")
        with pytest.raises(PatchError):
            b.replace_function("other", "slow_double")
            b.commit()


class TestStaticReplacementRewrite:
    def test_replacement_survives_rewrite(self):
        """replaceFunction through the static-rewriting flow."""
        from repro.api import load_rewritten
        from repro.sim import Machine
        b = open_binary(compile_source(SRC))
        b.replace_function("other", "fast_double")
        blob = b.rewrite()
        m = Machine()
        load_rewritten(m, blob)
        ev = m.run(max_steps=2_000_000)
        assert ev.reason is StopReason.EXITED
        assert bytes(m.stdout).decode().split() == ["42", "10"]


class TestCallRetargeting:
    def test_retarget_single_call_site(self):
        b = open_binary(compile_source(SRC))
        main = b.function("main")
        other = b.function("other")
        # find the call site in main that calls `other`
        site = next(
            p for p in b.points(main, PointType.CALL_SITE)
            if other.entry in {
                e.target for e in p.block.out_edges if e.target})
        b.replace_call(site, "fast_double")
        out = run(b)
        assert out == ["42", "10"]

    def test_other_sites_unaffected(self):
        b = open_binary(compile_source(SRC))
        main = b.function("main")
        slow = b.function("slow_double")
        site = next(
            p for p in b.points(main, PointType.CALL_SITE)
            if slow.entry in {
                e.target for e in p.block.out_edges if e.target})
        b.replace_call(site, "other")
        out = run(b)
        assert out == ["121", "105"]  # slow_double(21) -> other(21)=121

    def test_replace_call_requires_call_site(self):
        b = open_binary(compile_source(SRC))
        main = b.function("main")
        entry_pt = b.points(main, PointType.FUNC_ENTRY)[0]
        with pytest.raises(PatchError):
            b._patcher.replace_call(entry_pt, 0x1000)

    def test_redirect_plus_payload(self):
        """Unconditional snippets at a redirected point still run."""
        b = open_binary(compile_source(SRC))
        c = b.allocate_variable("calls")
        b.insert(b.points("other", PointType.FUNC_ENTRY),
                 IncrementVar(c))
        b.replace_function("other", "fast_double")
        m, ev = b.run_instrumented()
        assert ev.reason is StopReason.EXITED
        # the payload at other's (diverted) entry still counted the call
        assert m.mem.read_int(c.address, 8) == 1
        assert bytes(m.stdout).decode().split() == ["42", "10"]
