"""Immediate-materialization tests (paper §3.2.5).

The property test evaluates the emitted lui/addi/addiw/slli sequence with
a tiny arithmetic interpreter (independent of the full simulator) and
checks the register ends up holding the requested 64-bit constant.
"""

from hypothesis import given, settings, strategies as st

from repro.riscv.encoding import sign_extend, to_unsigned
from repro.riscv.materialize import (
    materialize_imm, materialize_length, pcrel_hi_lo, split_hi_lo,
)


def _evaluate(seq, rd):
    """Interpret a materialization sequence on a 64-bit register file."""
    regs = [0] * 32
    for mn, f in seq:
        if mn == "addi":
            regs[f["rd"]] = to_unsigned(
                sign_extend(regs[f["rs1"]], 64) + f["imm"], 64)
        elif mn == "addiw":
            v = sign_extend(regs[f["rs1"]], 64) + f["imm"]
            regs[f["rd"]] = to_unsigned(sign_extend(v, 32), 64)
        elif mn == "lui":
            regs[f["rd"]] = to_unsigned(sign_extend(f["imm"], 20) << 12, 64)
        elif mn == "slli":
            regs[f["rd"]] = to_unsigned(regs[f["rs1"]] << f["shamt"], 64)
        else:  # pragma: no cover
            raise AssertionError(f"unexpected instruction {mn}")
        regs[0] = 0
    return regs[rd]


class TestSplitHiLo:
    def test_simple(self):
        hi, lo = split_hi_lo(0x12345678)
        assert sign_extend(((hi << 12) + lo) & 0xFFFFFFFF, 32) == 0x12345678

    def test_negative_lo_rounds_hi_up(self):
        hi, lo = split_hi_lo(0x12345FFF)
        assert lo < 0
        assert (hi << 12) + lo == 0x12345FFF

    def test_near_int32_max(self):
        # The classic corner: values whose hi20 field wraps.
        hi, lo = split_hi_lo(0x7FFFF800)
        v = sign_extend((to_unsigned(hi << 12, 32) + to_unsigned(lo, 32)) & 0xFFFFFFFF, 32)
        assert v == 0x7FFFF800


class TestMaterialize:
    def test_zero_single_instruction(self):
        seq = materialize_imm(5, 0)
        assert seq == [("addi", {"rd": 5, "rs1": 0, "imm": 0})]

    def test_small_imm_single(self):
        assert materialize_length(2047) == 1
        assert materialize_length(-2048) == 1

    def test_32bit_two_instructions(self):
        assert materialize_length(0x12345678) == 2

    def test_page_constant_single_lui(self):
        seq = materialize_imm(6, 0x1000)
        assert len(seq) == 1 and seq[0][0] == "lui"

    def test_wide_constant_bounded(self):
        # Worst case for the recursive construction is 8 instructions.
        assert materialize_length(0x0123_4567_89AB_CDEF) <= 8

    def test_power_of_two_shift_absorption(self):
        # 1<<40 should be li + single shift, not a 12-step ladder.
        assert materialize_length(1 << 40) == 2

    def test_minus_one(self):
        assert _evaluate(materialize_imm(7, -1), 7) == to_unsigned(-1, 64)

    def test_int64_min(self):
        v = -(1 << 63)
        assert _evaluate(materialize_imm(7, v), 7) == to_unsigned(v, 64)


@settings(max_examples=500, deadline=None)
@given(value=st.one_of(
    st.integers(-(1 << 63), (1 << 63) - 1),
    st.sampled_from([0, 1, -1, 0x7FF, 0x800, -0x800, -0x801,
                     0x7FFFFFFF, -0x80000000, 0x80000000,
                     0x7FFFF800, 0xFFFFFFFF, 1 << 62, -(1 << 63)]),
))
def test_materialize_correct_for_random_values(value):
    """PROPERTY: the emitted sequence computes exactly `value` (mod 2^64)
    and never exceeds 8 instructions."""
    seq = materialize_imm(9, value)
    assert len(seq) <= 8
    assert _evaluate(seq, 9) == to_unsigned(value, 64)
    # The sequence must only clobber rd.
    for _, f in seq:
        assert f["rd"] == 9


class TestPcrelHiLo:
    def test_forward_target(self):
        pc, target = 0x10000, 0x12345
        hi, lo = pcrel_hi_lo(target, pc)
        assert pc + sign_extend(to_unsigned(hi << 12, 32), 32) + lo == target

    def test_backward_target(self):
        pc, target = 0x20000, 0x10008
        hi, lo = pcrel_hi_lo(target, pc)
        assert pc + sign_extend(to_unsigned(hi << 12, 32), 32) + lo == target


@settings(max_examples=300, deadline=None)
@given(pc=st.integers(0x1000, 1 << 40),
       delta=st.integers(-(1 << 31) + 0x1000, (1 << 31) - 0x1000))
def test_pcrel_roundtrip(pc, delta):
    """PROPERTY: auipc-style hi/lo always reconstructs the target."""
    pc &= ~1
    target = pc + delta
    hi, lo = pcrel_hi_lo(target, pc)
    assert -2048 <= lo <= 2047
    assert pc + (sign_extend(hi, 20) << 12) + lo == target
