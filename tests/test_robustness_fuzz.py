"""Robustness fuzzing: malformed inputs must fail cleanly, never crash
or hang — the posture a toolkit consuming arbitrary binaries needs."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.elf import ElfFormatError, read_elf, write_program
from repro.minicc import compile_source, fib_source
from repro.proccontrol import EventType, Process
from repro.riscv import assemble
from repro.symtab import Symtab


@pytest.fixture(scope="module")
def good_elf():
    return write_program(compile_source(fib_source(4)))


@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_corrupted_elf_never_crashes(good_elf, data):
    """PROPERTY: random byte corruption of a valid ELF either still
    parses or raises a clean, typed error."""
    blob = bytearray(good_elf)
    n_flips = data.draw(st.integers(1, 8))
    for _ in range(n_flips):
        pos = data.draw(st.integers(0, len(blob) - 1))
        blob[pos] = data.draw(st.integers(0, 255))
    try:
        elf = read_elf(bytes(blob))
        # parsing succeeded: the Symtab layer must also stay clean
        try:
            Symtab.from_elf(elf)
        except (ValueError, KeyError):
            pass
    except ElfFormatError:
        # the reader's whole error surface: struct.error / IndexError /
        # bare ValueError escaping read_elf is a hardening regression
        pass


@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_truncated_elf_never_crashes(good_elf, data):
    """PROPERTY: clipping a valid ELF at any byte — the classic
    truncated-download shape — parses or raises ElfFormatError only."""
    cut = data.draw(st.integers(0, len(good_elf) - 1))
    try:
        read_elf(bytes(good_elf[:cut]))
    except ElfFormatError:
        pass


@settings(max_examples=150, deadline=None)
@given(blob=st.binary(min_size=0, max_size=512))
def test_arbitrary_bytes_never_crash_reader(blob):
    try:
        read_elf(blob)
    except ElfFormatError:
        pass


@settings(max_examples=100, deadline=None)
@given(blob=st.binary(min_size=64, max_size=256))
def test_arbitrary_code_region_parses_cleanly(blob):
    """PROPERTY: ParseAPI over arbitrary bytes terminates without
    exceptions (gaps + decode errors are normal outcomes)."""
    from repro.parse import parse_binary
    from repro.riscv.assembler import Program, Symbol
    from repro.riscv.extensions import RV64GC

    program = Program(
        text_base=0x1_0000, text=bytes(blob),
        data_base=0x2_0000, data=b"", bss_base=0x3_0000, bss_size=0,
        symbols={"blob": Symbol("blob", 0x1_0000, len(blob), "func",
                                ".text", True)},
        entry=0x1_0000, arch=RV64GC)
    co = parse_binary(Symtab.from_program(program))
    # whatever was parsed must be internally consistent
    for fn in co.functions.values():
        for b in fn.blocks.values():
            pc = b.start
            for insn in b.insns:
                assert insn.address == pc
                pc += insn.length


class TestHardenedReader:
    """Targeted malformed-ELF shapes (the fuzz tests' named cousins):
    each must raise :class:`ElfFormatError`, never struct.error or
    IndexError."""

    def _shdr_field(self, blob: bytearray, index: int, field_off: int,
                    value: int) -> None:
        from repro.elf import structs as s
        ehdr = s.ElfHeader.unpack(bytes(blob))
        off = ehdr.e_shoff + index * s.SHDR_SIZE + field_off
        blob[off:off + 8] = value.to_bytes(8, "little")

    def test_section_offset_past_eof(self, good_elf):
        blob = bytearray(good_elf)
        # sh_offset is the 3rd u64 field (after two u32 + two u64)
        self._shdr_field(blob, 1, 4 + 4 + 8 + 8, len(blob) + 0x1000)
        with pytest.raises(ElfFormatError):
            read_elf(bytes(blob))

    def test_impossible_section_size(self, good_elf):
        blob = bytearray(good_elf)
        self._shdr_field(blob, 1, 4 + 4 + 8 + 8 + 8, 1 << 62)
        with pytest.raises(ElfFormatError):
            read_elf(bytes(blob))

    def test_truncated_section_header_table(self, good_elf):
        from repro.elf import structs as s
        ehdr = s.ElfHeader.unpack(bytes(good_elf))
        cut = ehdr.e_shoff + s.SHDR_SIZE // 2
        with pytest.raises(ElfFormatError):
            read_elf(bytes(good_elf[:cut]))

    def test_clipped_attributes_section(self):
        from repro.elf.riscv_attrs import (
            AttributesError, build_attributes_section,
            parse_attributes_section,
        )
        section = build_attributes_section("rv64imafdc")
        for cut in range(1, len(section)):
            try:
                parse_attributes_section(section[:cut])
            except AttributesError:
                pass
        # and the clipped-attributes error IS an ELF format error
        assert issubclass(AttributesError, ElfFormatError)

    def test_unterminated_string_table(self):
        from repro.elf.structs import StringTable
        with pytest.raises(ElfFormatError):
            StringTable.read(b"abc", 0)          # no NUL terminator
        with pytest.raises(ElfFormatError):
            StringTable.read(b"abc\x00", 99)     # offset out of range


class TestBreakpointWriteThrough:
    def test_write_over_breakpoint_merges(self):
        p = assemble("""
.globl _start
_start:
  li a0, 1
  addi a0, a0, 2
  li a7, 93
  ecall
""")
        st_ = Symtab.from_program(p)
        proc = Process.create(st_)
        site = p.entry + 4  # the addi
        proc.insert_breakpoint(site)
        # debugger-style code patch while the trap is planted:
        from repro.riscv import encode
        proc.write_memory(
            site, encode("addi", rd=10, rs1=10, imm=40).to_bytes(4, "little"))
        # the trap must still be armed...
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        # ...and resuming must execute the *new* instruction
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        assert ev.exit_code == 41

    def test_write_elsewhere_untouched(self):
        p = assemble("_start:\nli a0, 7\nli a7, 93\necall\n")
        st_ = Symtab.from_program(p)
        proc = Process.create(st_)
        proc.insert_breakpoint(p.entry + 4)
        from repro.riscv import encode
        proc.write_memory(
            p.entry, encode("addi", rd=10, rs1=0, imm=9).to_bytes(4, "little"))
        proc.continue_to_event()          # hits the breakpoint
        ev = proc.continue_to_event()
        assert ev.exit_code == 9
