"""C-extension decode/expand tests (paper §3.1.2).

Reference encodings cross-checked against the RVC spec tables.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.riscv.compressed import (
    CJ_RANGE, IllegalCompressed, decode_compressed, encode_c_addi,
    encode_c_ebreak, encode_c_li, encode_c_mv, encode_c_nop, encode_cj,
    encode_c_jr, try_compress,
)
from repro.riscv.decoder import decode
from repro.riscv.encoding import EncodingError


def _exp(hw):
    return decode_compressed(hw)


class TestQuadrant0:
    def test_all_zero_is_illegal(self):
        with pytest.raises(IllegalCompressed):
            decode_compressed(0x0000)

    def test_c_addi4spn(self):
        # c.addi4spn a0, sp, 16  ->  0x0808 (uimm[5:4]=01 -> w[12:11], rd'=010)
        ins = _exp(0x0808)
        assert ins.compressed_mnemonic == "c.addi4spn"
        assert ins.mnemonic == "addi"
        assert ins.fields == {"rd": 10, "rs1": 2, "imm": 16}

    def test_c_addi4spn_zero_imm_illegal(self):
        with pytest.raises(IllegalCompressed):
            decode_compressed(0x0000 | 0b000 << 13 | 0x2 << 2 | 0b00 | 0)

    def test_c_lw(self):
        # c.lw a1, 4(a0) -> funct3=010 rs1'=010 uimm2=1 rd'=011
        hw = (0b010 << 13) | (0 << 10) | (0b010 << 7) | (1 << 6) | (0 << 5) | (0b011 << 2)
        ins = _exp(hw)
        assert ins.mnemonic == "lw" and ins.compressed_mnemonic == "c.lw"
        assert ins.fields == {"rd": 11, "rs1": 10, "imm": 4}

    def test_c_ld_and_c_sd_roundtrip_semantics(self):
        # c.ld s0, 8(s1): f3=011 uimm[5:3]=001 rs1'=001 uimm[7:6]=00 rd'=000
        hw = (0b011 << 13) | (0b001 << 10) | (0b001 << 7) | (0b000 << 2)
        ins = _exp(hw)
        assert ins.mnemonic == "ld"
        assert ins.fields == {"rd": 8, "rs1": 9, "imm": 8}
        hw_sd = (0b111 << 13) | (0b001 << 10) | (0b001 << 7) | (0b000 << 2)
        ins = _exp(hw_sd)
        assert ins.mnemonic == "sd"
        assert ins.fields == {"rs2": 8, "rs1": 9, "imm": 8}

    def test_c_fld(self):
        hw = (0b001 << 13) | (0b010 << 10) | (0b000 << 7) | (0b01 << 5) | (0b111 << 2)
        ins = _exp(hw)
        assert ins.mnemonic == "fld"
        assert ins.fields["imm"] == 16 + 64


class TestQuadrant1:
    def test_c_nop(self):
        ins = _exp(0x0001)
        assert ins.compressed_mnemonic == "c.nop"
        assert ins.mnemonic == "addi"
        assert ins.fields == {"rd": 0, "rs1": 0, "imm": 0}

    def test_c_addi(self):
        ins = _exp(encode_c_addi(10, -3))
        assert ins.fields == {"rd": 10, "rs1": 10, "imm": -3}

    def test_c_li(self):
        ins = _exp(encode_c_li(15, -32))
        assert ins.mnemonic == "addi"
        assert ins.fields == {"rd": 15, "rs1": 0, "imm": -32}

    def test_c_lui(self):
        # c.lui a1, 1 -> f3=011 rd=11 imm6=1 -> bit2=1
        hw = (0b011 << 13) | (11 << 7) | (1 << 2) | 0b01
        ins = _exp(hw)
        assert ins.mnemonic == "lui"
        assert ins.fields == {"rd": 11, "imm": 1}

    def test_c_addi16sp(self):
        # c.addi16sp sp, 32: nzimm=32 -> bit5 of imm -> word bit2
        hw = (0b011 << 13) | (2 << 7) | (1 << 2) | 0b01
        ins = _exp(hw)
        assert ins.mnemonic == "addi"
        assert ins.fields == {"rd": 2, "rs1": 2, "imm": 32}

    def test_c_alu_ops(self):
        # c.sub s0, s1: f3=100, bits11:10=11, rd'=000, bits6:5=00, rs2'=001
        hw = (0b100 << 13) | (0b11 << 10) | (0b000 << 7) | (0b00 << 5) | (0b001 << 2) | 0b01
        ins = _exp(hw)
        assert ins.mnemonic == "sub"
        assert ins.fields == {"rd": 8, "rs1": 8, "rs2": 9}

    def test_c_srli_full_shamt(self):
        hw = (0b100 << 13) | (1 << 12) | (0b00 << 10) | (0b010 << 7) | (0b00001 << 2) | 0b01
        ins = _exp(hw)
        assert ins.mnemonic == "srli"
        assert ins.fields["shamt"] == 33

    def test_c_j_roundtrip(self):
        for off in (0, 2, -2, 100, -100, CJ_RANGE[0], CJ_RANGE[1]):
            ins = _exp(encode_cj(off))
            assert ins.mnemonic == "jal"
            assert ins.fields == {"rd": 0, "imm": off}, off

    def test_c_beqz(self):
        # c.beqz s0, +8: imm=8 -> imm[4:3]=01 -> word[11:10]=01
        hw = (0b110 << 13) | (0b01 << 10) | (0b000 << 7) | 0b01
        ins = _exp(hw)
        assert ins.mnemonic == "beq"
        assert ins.fields == {"rs1": 8, "rs2": 0, "imm": 8}


class TestQuadrant2:
    def test_c_slli(self):
        hw = (0b000 << 13) | (1 << 12) | (5 << 7) | (0b00010 << 2) | 0b10
        ins = _exp(hw)
        assert ins.mnemonic == "slli"
        assert ins.fields == {"rd": 5, "rs1": 5, "shamt": 34}

    def test_c_lwsp(self):
        # c.lwsp a0, 12(sp): uimm=12 -> [4:2]=011 -> word[6:4]=011
        hw = (0b010 << 13) | (10 << 7) | (0b011 << 4) | 0b10
        ins = _exp(hw)
        assert ins.mnemonic == "lw"
        assert ins.fields == {"rd": 10, "rs1": 2, "imm": 12}

    def test_c_ldsp_sdsp(self):
        hw = (0b011 << 13) | (1 << 12) | (8 << 7) | 0b10  # c.ldsp s0, 32(sp)
        ins = _exp(hw)
        assert ins.mnemonic == "ld" and ins.fields["imm"] == 32
        hw = (0b111 << 13) | (0b010 << 10) | (9 << 2) | 0b10  # c.sdsp s1, 16(sp)
        ins = _exp(hw)
        assert ins.mnemonic == "sd"
        assert ins.fields == {"rs2": 9, "rs1": 2, "imm": 16}

    def test_c_jr(self):
        ins = _exp(encode_c_jr(1))
        assert ins.mnemonic == "jalr"
        assert ins.fields == {"rd": 0, "rs1": 1, "imm": 0}

    def test_c_jr_x0_illegal(self):
        with pytest.raises(IllegalCompressed):
            decode_compressed((0b100 << 13) | 0b10)

    def test_c_mv(self):
        ins = _exp(encode_c_mv(10, 11))
        assert ins.mnemonic == "add"
        assert ins.fields == {"rd": 10, "rs1": 0, "rs2": 11}

    def test_c_ebreak(self):
        ins = _exp(encode_c_ebreak())
        assert ins.mnemonic == "ebreak"
        assert ins.length == 2

    def test_c_jalr(self):
        hw = (0b100 << 13) | (1 << 12) | (5 << 7) | 0b10
        ins = _exp(hw)
        assert ins.mnemonic == "jalr"
        assert ins.fields == {"rd": 1, "rs1": 5, "imm": 0}

    def test_c_add(self):
        hw = (0b100 << 13) | (1 << 12) | (5 << 7) | (6 << 2) | 0b10
        ins = _exp(hw)
        assert ins.mnemonic == "add"
        assert ins.fields == {"rd": 5, "rs1": 5, "rs2": 6}


class TestEncoders:
    def test_cj_range_enforced(self):
        with pytest.raises(EncodingError):
            encode_cj(CJ_RANGE[1] + 2)
        with pytest.raises(EncodingError):
            encode_cj(CJ_RANGE[0] - 2)
        with pytest.raises(EncodingError):
            encode_cj(3)

    def test_c_nop_canonical(self):
        assert encode_c_nop() == 0x0001

    def test_c_ebreak_canonical(self):
        assert encode_c_ebreak() == 0x9002

    def test_length_marker(self):
        ins = decode(encode_c_nop().to_bytes(2, "little"))
        assert ins.length == 2
        assert ins.extension == "c"


class TestTryCompress:
    def test_mv_compresses(self):
        hw = try_compress("add", {"rd": 5, "rs1": 0, "rs2": 6})
        assert hw is not None
        assert decode_compressed(hw).fields == {"rd": 5, "rs1": 0, "rs2": 6}

    def test_li_small_compresses(self):
        hw = try_compress("addi", {"rd": 5, "rs1": 0, "imm": 7})
        assert decode_compressed(hw).fields == {"rd": 5, "rs1": 0, "imm": 7}

    def test_nop_compresses(self):
        assert try_compress("addi", {"rd": 0, "rs1": 0, "imm": 0}) == 0x0001

    def test_large_imm_not_compressible(self):
        assert try_compress("addi", {"rd": 5, "rs1": 0, "imm": 100}) is None

    def test_ret_compresses_to_c_jr(self):
        hw = try_compress("jalr", {"rd": 0, "rs1": 1, "imm": 0})
        assert decode_compressed(hw).compressed_mnemonic == "c.jr"


@settings(max_examples=400, deadline=None)
@given(hw=st.integers(1, 0xFFFF))
def test_compressed_decode_total(hw):
    """PROPERTY: every halfword either raises IllegalCompressed / is a
    32-bit prefix, or expands to an instruction flagged length==2 whose
    raw equals the input."""
    if (hw & 0b11) == 0b11:
        return
    try:
        ins = decode_compressed(hw)
    except IllegalCompressed:
        return
    assert ins.length == 2
    assert ins.raw == hw
    assert ins.compressed_mnemonic.startswith("c.")


@settings(max_examples=200, deadline=None)
@given(off=st.integers(CJ_RANGE[0] // 2, CJ_RANGE[1] // 2).map(lambda v: v * 2))
def test_cj_encode_decode_roundtrip(off):
    """PROPERTY: c.j offset encode/decode is the identity over its range."""
    ins = decode_compressed(encode_cj(off))
    assert ins.fields["imm"] == off
