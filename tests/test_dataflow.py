"""DataflowAPI tests: liveness (dead-register discovery), slicing,
constant resolution, stack height."""

import pytest

from repro.dataflow import (
    analyze_liveness, analyze_stack_height, backward_slice,
    build_slice_graph, forward_slice, resolve_register,
)
from repro.minicc import compile_source, fib_source, matmul_source
from repro.parse import parse_binary
from repro.riscv import assemble, lookup
from repro.symtab import Symtab


def parse_asm(src):
    return parse_binary(Symtab.from_program(assemble(src)))


def fn_of(co, name):
    fn = co.function_by_name(name)
    assert fn is not None, name
    return fn


class TestLiveness:
    def test_straightline_dead_register(self):
        co = parse_asm("""
.type f, @function
f:
  addi t0, zero, 1     # t0 defined here
  add a0, a0, t0       # last use of t0
  ret
""")
        f = fn_of(co, "f")
        lv = analyze_liveness(f)
        entry = f.entry
        # Before the first instruction t0 holds no useful value... but it
        # is *used* by the add after being defined, so at the add t0 is
        # live; after the add nothing reads it.
        assert lookup("t0") in lv.live_before(entry + 4)
        # t1 is never touched: dead everywhere.
        assert lookup("t1") in lv.dead_before(entry)
        assert lookup("t1") in lv.dead_before(entry + 4)

    def test_a0_live_at_return(self):
        co = parse_asm("""
.type f, @function
f:
  addi a0, zero, 42
  ret
""")
        f = fn_of(co, "f")
        lv = analyze_liveness(f)
        # a0 is the return value: live after its definition.
        assert lookup("a0") in lv.live_before(f.entry + 4)
        # ...and its incoming value is dead at entry (overwritten).
        assert lookup("a0") in lv.dead_before(f.entry)

    def test_branch_join_keeps_both_paths_live(self):
        co = parse_asm("""
.type f, @function
f:
  beqz a0, other
  add a1, a1, a2       # uses a2
  ret
other:
  add a1, a1, a3       # uses a3
  ret
""")
        f = fn_of(co, "f")
        lv = analyze_liveness(f)
        live = lv.live_before(f.entry)
        assert lookup("a2") in live and lookup("a3") in live

    def test_call_clobbers_make_caller_saved_dead_after(self):
        co = parse_asm("""
.type f, @function
f:
  addi sp, sp, -16
  sd ra, 0(sp)
  call g
  addi a0, a0, 1       # post-call: t-regs dead (clobbered by call)
  ld ra, 0(sp)
  addi sp, sp, 16
  ret
.type g, @function
g:
  ret
""")
        f = fn_of(co, "f")
        lv = analyze_liveness(f)
        post_call = f.entry + 12  # the addi a0 after the call
        dead = lv.dead_before(post_call)
        assert lookup("t0") in dead and lookup("t3") in dead

    def test_arg_regs_live_at_call(self):
        co = parse_asm("""
.type f, @function
f:
  call g
  ret
.type g, @function
g:
  ret
""")
        f = fn_of(co, "f")
        lv = analyze_liveness(f)
        live = lv.live_before(f.entry)
        for name in ("a0", "a7"):
            assert lookup(name) in live

    def test_unresolved_indirect_makes_all_live(self):
        co = parse_asm("""
.type f, @function
f:
  jr a5
""")
        f = fn_of(co, "f")
        lv = analyze_liveness(f)
        assert lv.dead_before(f.entry) == []

    def test_matmul_inner_loop_has_dead_registers(self):
        """The paper's §4.3 claim depends on dead registers existing at
        typical instrumentation points in compiled code."""
        co = parse_binary(Symtab.from_program(
            compile_source(matmul_source(4, 1))))
        mult = fn_of(co, "multiply")
        lv = analyze_liveness(mult)
        for block in mult.blocks.values():
            dead = lv.dead_before(block.start)
            assert dead, f"no dead registers at {block.start:#x}"

    def test_query_outside_function_raises(self):
        co = parse_asm(".type f, @function\nf:\nret\n")
        lv = analyze_liveness(fn_of(co, "f"))
        with pytest.raises(KeyError):
            lv.live_before(0xDEAD)


class TestSlicing:
    SRC = """
.type f, @function
f:
  addi t0, zero, 5      # A: t0 = 5
  addi t1, zero, 7      # B: t1 = 7
  add t2, t0, t1        # C: t2 = t0 + t1
  addi t3, zero, 1      # D: independent
  add a0, t2, t3        # E: a0 = t2 + t3
  ret
"""

    def test_backward_slice_follows_dataflow(self):
        co = parse_asm(self.SRC)
        f = fn_of(co, "f")
        e = f.entry
        sl = backward_slice(f, e + 16)  # E
        assert sl == {e + 0, e + 4, e + 8, e + 12}

    def test_backward_slice_single_register(self):
        co = parse_asm(self.SRC)
        f = fn_of(co, "f")
        e = f.entry
        sl = backward_slice(f, e + 16, lookup("t3"))
        assert sl == {e + 12}

    def test_forward_slice(self):
        co = parse_asm(self.SRC)
        f = fn_of(co, "f")
        e = f.entry
        sl = forward_slice(f, e)  # from A: flows into C then E
        assert sl == {e + 8, e + 16}

    def test_slice_across_branches(self):
        co = parse_asm("""
.type f, @function
f:
  addi t0, zero, 1      # A
  beqz a0, other
  addi t0, zero, 2      # B: redefinition on one path
other:
  add a0, a0, t0        # C: both A and B reach here
  ret
""")
        f = fn_of(co, "f")
        e = f.entry
        g = build_slice_graph(f)
        use_addr = e + 12
        defs = {d for _, d in g.reaching[use_addr] }
        assert e + 0 in defs and e + 8 in defs

    def test_memory_coarse_slicing(self):
        co = parse_asm("""
.type f, @function
f:
  sd a1, 0(a0)          # store
  ld a2, 8(a0)          # load: coarsely depends on the store
  add a0, a2, zero
  ret
""")
        f = fn_of(co, "f")
        e = f.entry
        sl = backward_slice(f, e + 8, include_memory=True)
        assert e + 0 in sl and e + 4 in sl
        sl_nomem = backward_slice(f, e + 8, include_memory=False)
        assert e + 0 not in sl_nomem


class TestConstProp:
    def _window(self, src, fname="f"):
        co = parse_asm(src)
        f = fn_of(co, fname)
        return sorted(f.instructions(), key=lambda i: i.address)

    def test_lui_addi_chain(self):
        w = self._window("""
.type f, @function
f:
  lui t0, 0x12345
  addi t0, t0, -273
  jr t0
""")
        v = resolve_register(w, 2, lookup("t0"))
        assert v == ((0x12345 << 12) - 273) & 0xFFFFFFFFFFFFFFFF

    def test_auipc_based(self):
        w = self._window("""
.type f, @function
f:
  auipc t1, 1
  addi t1, t1, 8
  jr t1
""")
        v = resolve_register(w, 2, lookup("t1"))
        assert v == 0x10000 + 0x1000 + 8

    def test_unknown_register_unresolved(self):
        w = self._window(".type f, @function\nf:\njr a0\n")
        assert resolve_register(w, 0, lookup("a0")) is None

    def test_load_without_oracle_unresolved(self):
        w = self._window("""
.type f, @function
f:
  ld t0, 0(sp)
  jr t0
""")
        assert resolve_register(w, 1, lookup("t0")) is None

    def test_x0_is_zero(self):
        w = self._window(".type f, @function\nf:\nret\n")
        assert resolve_register(w, 0, lookup("zero")) == 0

    def test_shifted_materialization(self):
        w = self._window("""
.type f, @function
f:
  li t0, 0x123456789
  jr t0
""")
        v = resolve_register(w, len(w) - 1, lookup("t0"))
        assert v == 0x123456789


class TestStackHeight:
    def test_standard_frame(self):
        co = parse_asm("""
.type f, @function
f:
  addi sp, sp, -32
  sd ra, 24(sp)
  sd s0, 16(sp)
  call g
  ld ra, 24(sp)
  ld s0, 16(sp)
  addi sp, sp, 32
  ret
.type g, @function
g:
  ret
""")
        f = fn_of(co, "f")
        sh = analyze_stack_height(f)
        e = f.entry
        assert sh.height_before(e) == 0
        assert sh.height_before(e + 4) == -32
        assert sh.frame_size == 32
        # ra saved at sp+24 when height = -32: entry-relative -8
        assert sh.ra_slot == -8
        assert sh.fp_saved_slot == -16
        # after frame teardown, the final ret sees height 0
        ret_addr = max(i.address for i in f.instructions())
        assert sh.height_before(ret_addr) == 0

    def test_leaf_function_no_ra_slot(self):
        co = parse_asm(".type f, @function\nf:\naddi a0, a0, 1\nret\n")
        sh = analyze_stack_height(fn_of(co, "f"))
        assert sh.ra_slot is None
        assert sh.frame_size == 0

    def test_dynamic_allocation_poisons(self):
        co = parse_asm("""
.type f, @function
f:
  sub sp, sp, a0       # VLA-style: unknown displacement
  addi a0, a0, 1
  ret
""")
        f = fn_of(co, "f")
        sh = analyze_stack_height(f)
        assert sh.height_before(f.entry + 4) is None

    def test_minicc_function_heights_consistent(self):
        co = parse_binary(Symtab.from_program(compile_source(fib_source())))
        fib = fn_of(co, "fib")
        sh = analyze_stack_height(fib)
        assert sh.ra_slot is not None
        assert sh.frame_size > 0
        for insn in fib.instructions():
            # fib has no dynamic allocation: every height is known
            assert sh.height_before(insn.address) is not None
