"""StackwalkerAPI tests: sp-height walking (frame-pointer-less code, the
RISC-V norm per §3.2.7), frame-pointer walking, stepper fallback."""

import pytest

from repro.minicc import Options, compile_source, fib_source
from repro.parse import parse_binary
from repro.proccontrol import EventType, Process
from repro.stackwalk import (
    Frame, FramePointerStepper, SPHeightStepper, StackWalker,
)
from repro.symtab import Symtab


def stopped_in_fib(n=6, hits=6, opts=None):
    p = compile_source(fib_source(n), opts)
    st = Symtab.from_program(p)
    co = parse_binary(st)
    proc = Process.create(st)
    fib = co.function_by_name("fib")
    proc.insert_breakpoint(fib.entry)
    for _ in range(hits):
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
    return proc, st, co


class TestSPHeightWalking:
    def test_walk_reaches_main_and_start(self):
        proc, st, co = stopped_in_fib()
        frames = StackWalker(proc, co).walk()
        names = [f.function_name for f in frames]
        assert names[0] == "fib"
        assert "main" in names
        assert names[-1] == "_start"

    def test_recursion_depth_visible(self):
        proc, st, co = stopped_in_fib(hits=4)
        frames = StackWalker(proc, co).walk()
        assert names_count(frames, "fib") >= 2

    def test_all_intermediate_frames_from_sp_stepper(self):
        proc, st, co = stopped_in_fib()
        frames = StackWalker(proc, co).walk()
        for f in frames[1:]:
            assert f.stepper == "sp-height"

    def test_walk_midfunction(self):
        """Stop somewhere inside fib's body (past the prologue) and
        walk: the ra comes from the stack slot."""
        p = compile_source(fib_source(6))
        st = Symtab.from_program(p)
        co = parse_binary(st)
        fib = co.function_by_name("fib")
        # breakpoint at a call site inside fib (prologue complete)
        site = fib.call_sites()[0].last.address
        proc = Process.create(st)
        proc.insert_breakpoint(site)
        for _ in range(3):
            proc.continue_to_event()
        frames = StackWalker(proc, co).walk()
        assert frames[0].function_name == "fib"
        assert frames[-1].function_name == "_start"

    def test_return_addresses_in_caller_bodies(self):
        proc, st, co = stopped_in_fib()
        frames = StackWalker(proc, co).walk()
        for f in frames[1:]:
            fn = co.function_containing(f.pc)
            assert fn is not None
            assert fn.name == f.function_name

    def test_format_output(self):
        proc, st, co = stopped_in_fib(hits=2)
        text = StackWalker(proc, co).format()
        assert "#0" in text and "fib" in text and "_start" in text


class TestFramePointerWalking:
    def test_fp_walk_on_fp_binary(self):
        proc, st, co = stopped_in_fib(
            hits=4, opts=Options(use_frame_pointer=True))
        # step past the prologue so s0 is established
        for _ in range(4):
            proc.step()
        walker = StackWalker(proc, co, steppers=[FramePointerStepper()])
        frames = walker.walk()
        names = [f.function_name for f in frames]
        assert names[0] == "fib"
        assert "main" in names

    def test_fp_stepper_fails_on_spbased_binary(self):
        """s0 is a general-purpose register in sp-based code: the FP
        stepper must not produce a (bogus) deep walk."""
        proc, st, co = stopped_in_fib(hits=3)
        walker = StackWalker(proc, co, steppers=[FramePointerStepper()])
        frames = walker.walk()
        # whatever it returns, every claimed pc must at least not be
        # trusted as fib frames all the way to _start
        names = [f.function_name for f in frames]
        assert len(frames) == 1 or names[-1] != "_start" or len(names) < 3

    def test_stepper_fallback_order(self):
        """With both steppers, sp-height handles sp-based binaries even
        when the FP stepper is listed first and declines."""
        proc, st, co = stopped_in_fib(hits=3)
        walker = StackWalker(
            proc, co,
            steppers=[FramePointerStepper(), SPHeightStepper(co)])
        frames = walker.walk()
        # mixed walks are acceptable; the walk must reach _start
        assert frames[-1].function_name == "_start" or len(frames) > 1


class TestWalkTermination:
    def test_depth_limit(self):
        proc, st, co = stopped_in_fib(hits=6)
        walker = StackWalker(proc, co, max_depth=2)
        assert len(walker.walk()) <= 3

    def test_walk_at_program_entry(self):
        p = compile_source(fib_source(3))
        st = Symtab.from_program(p)
        co = parse_binary(st)
        proc = Process.create(st)
        frames = StackWalker(proc, co).walk()
        assert len(frames) == 1
        assert frames[0].function_name == "_start"


def names_count(frames: list[Frame], name: str) -> int:
    return sum(1 for f in frames if f.function_name == name)
