"""The v2 BPatch session API: InstrumentOptions, the ReproError
hierarchy, batch commits, session lifetime, and the deprecation shims
that keep the v1 call forms working."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import (
    AlreadyCommittedError, ApiError, BinaryEdit, ClosedEditError,
    DEFAULT_OPTIONS, InstrumentOptions, ReproError, open_binary,
)
from repro.codegen.snippets import IncrementVar
from repro.minicc import compile_source
from repro.minicc.workloads import fib_source
from repro.patch.points import PointType
from repro.sim.machine import StopReason
from repro.symtab.symtab import Symtab


@pytest.fixture(scope="module")
def fib_prog():
    return compile_source(fib_source(8))


class TestInstrumentOptions:
    def test_defaults(self):
        o = InstrumentOptions()
        assert o.gap_parsing is True
        assert o.use_dead_registers is True
        assert o.patch_base is None
        assert o.interprocedural_liveness is False
        assert o == DEFAULT_OPTIONS

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            InstrumentOptions().gap_parsing = False

    def test_replace_derives_variant(self):
        o = InstrumentOptions().replace(use_dead_registers=False)
        assert o.use_dead_registers is False
        assert o.gap_parsing is True
        assert DEFAULT_OPTIONS.use_dead_registers is True

    def test_options_reach_the_patcher(self, fib_prog):
        edit = open_binary(
            fib_prog, InstrumentOptions(use_dead_registers=False,
                                        patch_base=0x4000_0000))
        assert edit.options.patch_base == 0x4000_0000
        assert edit._patcher.use_dead_registers is False
        assert edit._patcher.data_base == 0x4000_0000

    def test_gap_parsing_off(self, fib_prog):
        edit = open_binary(fib_prog,
                           InstrumentOptions(gap_parsing=False))
        assert edit.functions()  # symbol-driven parse still works


class TestLegacyKwargRemoval:
    """The v1 boolean keywords finished their deprecation cycle: they
    now raise ApiError with a migration hint instead of warning."""

    def test_legacy_open_binary_kwarg_raises(self, fib_prog):
        with pytest.raises(ApiError, match="gap_parsing"):
            open_binary(fib_prog, gap_parsing=False)

    def test_legacy_binary_edit_kwargs_raise(self, fib_prog):
        st = Symtab.from_program(fib_prog)
        with pytest.raises(ApiError, match="use_dead_registers"):
            BinaryEdit(st, use_dead_registers=False,
                       patch_base=0x4000_0000)

    def test_error_carries_the_migration_hint(self, fib_prog):
        with pytest.raises(ApiError,
                           match=r"InstrumentOptions\(gap_parsing=") :
            open_binary(fib_prog, gap_parsing=True)

    def test_options_plus_legacy_kwarg_still_rejected(self, fib_prog):
        with pytest.raises(ApiError, match="legacy keyword"):
            open_binary(fib_prog, InstrumentOptions(),
                        gap_parsing=False)

    def test_new_form_does_not_warn(self, fib_prog, recwarn):
        open_binary(fib_prog, InstrumentOptions(gap_parsing=False))
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestErrorHierarchy:
    def test_api_error_is_repro_and_runtime_error(self):
        assert issubclass(ApiError, ReproError)
        assert issubclass(ApiError, RuntimeError)
        assert issubclass(AlreadyCommittedError, ApiError)
        assert issubclass(ClosedEditError, ApiError)

    def test_layer_errors_share_the_base(self):
        from repro.elf.structs import ElfFormatError
        from repro.patch.patcher import PatchError
        from repro.patch.points import PointError
        from repro.patch.springboard import SpringboardError
        from repro.proccontrol.process import ProcControlError
        from repro.riscv.decoder import DecodeError
        from repro.sim.executor import SimFault
        from repro.sim.memory import MemoryFault

        for cls in (ElfFormatError, PatchError, PointError,
                    SpringboardError, ProcControlError, DecodeError,
                    SimFault, MemoryFault):
            assert issubclass(cls, ReproError), cls

    def test_legacy_catch_clauses_still_match(self):
        from repro.elf.structs import ElfFormatError
        from repro.patch.patcher import PatchError

        assert issubclass(ElfFormatError, ValueError)
        assert issubclass(PatchError, RuntimeError)

    def test_user_mistakes_raise_repro_error(self, fib_prog):
        with pytest.raises(ReproError):
            open_binary(12345)  # not bytes/Program/Symtab
        edit = open_binary(fib_prog)
        with pytest.raises(ReproError):
            edit.function("no_such_function")

    def test_one_catch_covers_the_stack(self, fib_prog):
        """The motivating case: one except clause for any layer."""
        caught = []
        for bad_call in (
            lambda: open_binary(b"not an elf"),
            lambda: open_binary(object()),
            lambda: open_binary(fib_prog).function("missing"),
        ):
            try:
                bad_call()
            except ReproError as e:
                caught.append(type(e).__name__)
        assert len(caught) == 3


class TestBatch:
    def _instrument(self, b):
        c = b.allocate_variable("c")
        b.insert(b.points("fib", PointType.FUNC_ENTRY), IncrementVar(c))
        return c

    def test_batch_commits_once_on_exit(self, fib_prog):
        edit = open_binary(fib_prog)
        with edit.batch() as b:
            c = self._instrument(b)
            assert edit._result is None  # queued, not yet committed
        assert edit._result is not None
        m, ev = edit.run_instrumented()
        assert ev.reason is StopReason.EXITED
        assert edit.read_variable(m, c) == 67

    def test_batch_aborts_on_exception(self, fib_prog):
        edit = open_binary(fib_prog)
        with pytest.raises(KeyError):
            with edit.batch() as b:
                self._instrument(b)
                raise KeyError("user bug")
        assert edit._result is None  # nothing committed

    def test_batch_does_not_nest(self, fib_prog):
        edit = open_binary(fib_prog)
        with pytest.raises(ApiError, match="nest"):
            with edit.batch():
                with edit.batch():
                    pass

    def test_use_after_commit_is_a_clear_error(self, fib_prog):
        edit = open_binary(fib_prog)
        self._instrument(edit)
        edit.commit()
        with pytest.raises(AlreadyCommittedError, match="committed"):
            edit.insert(edit.points("fib", PointType.FUNC_ENTRY),
                        IncrementVar(edit.allocate_variable("d")))
        with pytest.raises(AlreadyCommittedError):
            edit.replace_function("fib", "fib")
        with pytest.raises(AlreadyCommittedError):
            with edit.batch():
                pass

    def test_commit_stays_idempotent(self, fib_prog):
        edit = open_binary(fib_prog)
        self._instrument(edit)
        assert edit.commit() is edit.commit()


class TestSessionLifecycle:
    def test_context_manager_flow(self, fib_prog):
        with open_binary(fib_prog) as edit:
            c = edit.allocate_variable("c")
            edit.insert(edit.points("fib", PointType.FUNC_ENTRY),
                        IncrementVar(c))
            m, ev = edit.run_instrumented()
            assert ev.reason is StopReason.EXITED
        assert edit.closed

    def test_closed_edit_rejects_instrumentation(self, fib_prog):
        with open_binary(fib_prog) as edit:
            pass
        with pytest.raises(ClosedEditError):
            edit.insert(edit.points("fib", PointType.FUNC_ENTRY),
                        IncrementVar(edit.allocate_variable("c")))

    def test_closed_edit_keeps_analysis_readable(self, fib_prog):
        with open_binary(fib_prog) as edit:
            pass
        assert edit.function("fib").name == "fib"
        assert edit.functions()

    def test_reenter_after_close_rejected(self, fib_prog):
        edit = open_binary(fib_prog)
        edit.close()
        with pytest.raises(ClosedEditError):
            with edit:
                pass

    def test_close_is_idempotent(self, fib_prog):
        edit = open_binary(fib_prog)
        edit.close()
        edit.close()
        assert edit.closed
