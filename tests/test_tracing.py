"""Mutatee execution tracing: event streams, call-stack reconstruction,
Perfetto/flamegraph exporters, and the API v2 surface.

Covers the observer-overhead contract from docs/INTERNALS.md: events
only flow while an observer is attached, attach/detach round-trips
leave the machine's architectural results bit-identical to an
unobserved run, and both granularities agree on what the mutatee did.
"""

import json

import pytest

from repro import telemetry
from repro.api import InstrumentOptions, open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source
from repro.minicc.workloads import fib_source, matmul_source
from repro.patch import PointType
from repro.proccontrol import EventType, Process
from repro.riscv import assemble
from repro.sim import Machine, P550, StopReason
from repro.telemetry.events import (
    BLOCK, BRANCH, CALL, EventStream, FAULT, JUMP, PATCH, RET,
)
from repro.tracing import (
    CallStackBuilder, SymbolIndex, block_heat, call_spans,
    folded_stacks, format_folded, hottest, perfetto_trace,
    validate_perfetto,
)

MATMUL = compile_source(matmul_source(6, 2))
FIB = compile_source(fib_source(8))


def _run_traced(prog, granularity="instruction", **machine_kw):
    m = Machine(P550, **machine_kw)
    m.load_program(prog)
    es = EventStream(granularity=granularity)
    stop = m.run(trace=es)
    return m, es, stop


# ---------------------------------------------------------------------------
# EventStream ring buffer


class TestEventStream:
    def test_push_and_order(self):
        es = EventStream(capacity=10)
        for i in range(5):
            es.push((BLOCK, i, 0, i, i))
        assert len(es) == 5
        assert [e[1] for e in es] == [0, 1, 2, 3, 4]
        assert es.dropped == 0

    def test_ring_overwrites_oldest(self):
        es = EventStream(capacity=4)
        for i in range(7):
            es.push((BLOCK, i, 0, i, i))
        assert len(es) == 4
        assert es.dropped == 3
        assert [e[1] for e in es] == [3, 4, 5, 6]

    def test_drain_empties(self):
        es = EventStream(capacity=4)
        for i in range(3):
            es.push((BLOCK, i, 0, i, i))
        out = es.drain()
        assert [e[1] for e in out] == [0, 1, 2]
        assert len(es) == 0
        es.push((BLOCK, 9, 0, 9, 9))
        assert [e[1] for e in es] == [9]

    def test_to_dicts_schema_shape(self):
        es = EventStream()
        es.push((CALL, 0x100, 0x200, 7, 70))
        (d,) = es.to_dicts()
        assert d == {"kind": "call", "pc": 0x100, "target": 0x200,
                     "instret": 7, "ucycles": 70}

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            EventStream(capacity=0)
        with pytest.raises(ValueError):
            EventStream(granularity="superblock")


# ---------------------------------------------------------------------------
# Machine emission


class TestMachineEvents:
    def test_no_observer_no_events(self):
        m = Machine(P550)
        m.load_program(MATMUL)
        assert not m.observed
        m.run()
        assert m._emit is None

    def test_calls_and_returns_balance(self):
        _, es, stop = _run_traced(MATMUL)
        assert stop.reason is StopReason.EXITED
        kinds = [e[0] for e in es]
        assert kinds.count(CALL) == kinds.count(RET) > 0

    def test_timestamps_monotonic(self):
        _, es, _ = _run_traced(MATMUL)
        instrets = [e[3] for e in es]
        assert all(a <= b for a, b in zip(instrets, instrets[1:]))

    def test_block_granularity_emits_blocks_only(self):
        m, es, stop = _run_traced(MATMUL, granularity="block")
        assert stop.reason is StopReason.EXITED
        assert {e[0] for e in es} == {BLOCK}
        assert m.traces.compiles > 0, \
            "block granularity must keep the trace compiler engaged"

    def test_instruction_granularity_deopts(self):
        m, es, _ = _run_traced(MATMUL)
        assert m.traces.compiles == 0, \
            "instruction granularity must stay on the interpreter"

    def test_observed_state_bit_identical(self):
        mu = Machine(P550)
        mu.load_program(MATMUL)
        mu.run()
        for granularity in ("instruction", "block"):
            m, _, _ = _run_traced(MATMUL, granularity=granularity)
            assert m.x == mu.x
            assert m.f == mu.f
            assert m.instret == mu.instret
            assert m.ucycles == mu.ucycles
            assert m.stdout == mu.stdout

    def test_granularities_agree_on_heat(self):
        """Interpreter block-enters and compiled-trace block-enters
        count the same hot block entries."""
        _, es_i, _ = _run_traced(MATMUL)
        _, es_b, _ = _run_traced(MATMUL, granularity="block")
        heat_i = block_heat(es_i.events())
        heat_b = block_heat(es_b.events())
        # the hottest block must agree exactly (superblock cuts can add
        # extra entries at untraceable instructions, so the full dicts
        # may differ at the margins)
        top_i = max(heat_i, key=heat_i.get)
        assert heat_b.get(top_i) == heat_i[top_i]

    def test_detach_restores_traced_throughput_path(self):
        m, es, _ = _run_traced(MATMUL)
        assert not m.observed
        assert m._observers == []
        m.load_program(MATMUL)
        m.run()
        assert m.traces.compiles > 0, \
            "after detach the trace compiler must engage again"

    def test_attach_is_idempotent_and_detach_unknown_ok(self):
        m = Machine(P550)
        es = EventStream()
        m.attach_observer(es)
        m.attach_observer(es)
        assert len(m._observers) == 1
        other = EventStream()
        m.detach_observer(other)  # not attached: no-op
        m.detach_observer(es)
        assert not m.observed

    def test_multiple_observers_fan_out(self):
        m = Machine(P550)
        m.load_program(FIB)
        a, b = EventStream(), EventStream()
        m.attach_observer(a)
        m.attach_observer(b)
        m.run()
        m.detach_observer(a)
        m.detach_observer(b)
        assert a.events() == b.events()
        assert len(a) > 0

    def test_fault_event_emitted(self):
        src = """
_start:
  ld a0, 0(zero)
"""
        prog = assemble(src)
        m = Machine(P550)
        m.load_program(prog)
        es = EventStream()
        stop = m.run(trace=es)
        assert stop.reason is StopReason.FAULT
        assert any(e[0] == FAULT for e in es)

    def test_bounded_run_emits_events(self):
        m = Machine(P550)
        m.load_program(MATMUL)
        es = EventStream()
        m.attach_observer(es)
        stop = m.run(max_steps=500)
        m.detach_observer(es)
        assert stop.reason is StopReason.STEPS_EXHAUSTED
        assert len(es) > 0


# ---------------------------------------------------------------------------
# Observer interaction with the tier-2 megatrace JIT


class TestMegatraceObserverInteraction:
    """Attaching an event stream at a mid-run debugger stop must deopt
    megatraces correctly: block granularity flushes the cache (emits
    are compiled *into* traces) and suppresses tier-2 promotion while
    observed; instruction granularity leaves compiled traces intact but
    undispatched.  Either way the architectural outcome is
    bit-identical to an unobserved continuation."""

    def _stop_at_print(self):
        """Run the megatraced matmul up to a breakpoint on
        ``print_long`` — fired once, after the hot loops have been
        promoted to megatraces — then clear the breakpoint."""
        m = Machine(P550, trace_compile=True, megatraces=True)
        m.load_program(MATMUL)
        proc = Process.attach(m)
        pl = MATMUL.symbol("print_long").address
        proc.insert_breakpoint(pl)
        ev = proc.continue_to_event()
        assert ev.type is EventType.STOPPED_BREAKPOINT
        assert ev.pc == pl
        proc.remove_breakpoint(pl)
        return m, proc

    def _state(self, m):
        return (m.pc, list(m.x), list(m.f), m.instret, m.ucycles,
                bytes(m.stdout))

    def test_midrun_block_attach_deopts_megatraces(self):
        ref, rproc = self._stop_at_print()
        assert ref.traces.mega_compiles > 0, \
            "hot loops must be tier-2 by the time print_long runs"
        assert rproc.continue_to_event().type is EventType.EXITED

        m, proc = self._stop_at_print()
        mega_at_stop = m.traces.mega_compiles
        es = EventStream(granularity="block")
        m.attach_observer(es)
        # block emits are compiled into traces: the attach must flush
        # every compiled trace, megatraces included
        assert len(m.traces.fns) == 0
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        # superblocks recompiled with the emit; tier-2 promotion is
        # refused while a block observer wants every block entry
        assert m.traces.compiles > 0
        assert m.traces.mega_compiles == mega_at_stop
        assert len(es) > 0 and {e[0] for e in es} == {BLOCK}
        assert self._state(m) == self._state(ref)

    def test_midrun_instruction_attach_undispatches_traces(self):
        ref, rproc = self._stop_at_print()
        assert rproc.continue_to_event().type is EventType.EXITED

        m, proc = self._stop_at_print()
        fns = len(m.traces.fns)
        compiles, mega = m.traces.compiles, m.traces.mega_compiles
        assert fns > 0 and mega > 0
        es = EventStream(granularity="instruction")
        m.attach_observer(es)
        # traces stay resident — they are simply not dispatched while
        # the observer wants per-instruction events
        assert len(m.traces.fns) == fns
        ev = proc.continue_to_event()
        assert ev.type is EventType.EXITED
        assert m.traces.compiles == compiles
        assert m.traces.mega_compiles == mega
        kinds = {e[0] for e in es}
        assert CALL in kinds and RET in kinds
        assert self._state(m) == self._state(ref)

    def test_detach_restores_megatrace_promotion(self):
        m, proc = self._stop_at_print()
        es = EventStream(granularity="block")
        m.attach_observer(es)
        assert proc.continue_to_event().type is EventType.EXITED
        mega_observed = m.traces.mega_compiles
        m.detach_observer(es)
        assert not m.observed
        # a fresh run of the same image must promote to tier 2 again
        m.load_program(MATMUL)
        stop = m.run()
        assert stop.reason is StopReason.EXITED
        assert m.traces.mega_compiles > mega_observed


# ---------------------------------------------------------------------------
# Call-stack reconstruction


class TestCallStack:
    def test_nesting_and_weights(self):
        m, es, _ = _run_traced(MATMUL)
        spans = call_spans(es.events(), SymbolIndex.from_program(MATMUL))
        by_name = {}
        for sp in spans:
            by_name.setdefault(sp.name, []).append(sp)
        (main,) = by_name["main"]
        for mult in by_name["multiply"]:
            assert mult.stack == ("_start", "main", "multiply")
            assert main.start_instret <= mult.start_instret
            assert mult.end_instret <= main.end_instret
        total = sum(sp.ucycles for sp in by_name["multiply"])
        assert total <= main.ucycles

    def test_recursion_depth(self):
        _, es, _ = _run_traced(FIB)
        spans = call_spans(es.events(), SymbolIndex.from_program(FIB))
        fib_spans = [sp for sp in spans if sp.name == "fib"]
        assert len(fib_spans) > 10  # fib(8) recursion tree
        assert max(sp.depth for sp in fib_spans) >= 5

    def test_no_irregulars_on_clean_program(self):
        _, es, _ = _run_traced(MATMUL)
        b = CallStackBuilder(SymbolIndex.from_program(MATMUL))
        b.feed(es.events())
        b.finish()
        assert b.irregular == 0

    def test_longjmp_style_unwind_scans_down(self):
        sym = SymbolIndex([(0x100, 16, "a"), (0x200, 16, "b"),
                           (0x300, 16, "c")])
        b = CallStackBuilder(sym)
        b.feed_one((BLOCK, 0x100, 0, 0, 0))
        b.feed_one((CALL, 0x104, 0x200, 1, 10))   # a -> b
        b.feed_one((CALL, 0x204, 0x300, 2, 20))   # b -> c
        # c "returns" straight past b to a (ret lands after a's call)
        b.feed_one((RET, 0x30c, 0x108, 3, 30))
        assert b.current_stack() == ("a",)
        assert b.irregular == 1  # one abandoned frame (c skipped b)
        spans = b.finish()
        assert {sp.name for sp in spans} == {"a", "b", "c"}

    def test_unmatched_return_without_walker(self):
        sym = SymbolIndex([(0x100, 16, "a"), (0x200, 16, "b")])
        b = CallStackBuilder(sym)
        b.feed_one((BLOCK, 0x100, 0, 0, 0))
        b.feed_one((CALL, 0x104, 0x200, 1, 10))
        b.feed_one((RET, 0x20c, 0x999, 2, 20))  # matches nothing
        assert b.irregular == 1
        assert b.current_stack() == ("a",)  # root survives

    def test_walker_fallback_resyncs(self):
        sym = SymbolIndex([(0x100, 16, "a"), (0x200, 16, "b"),
                           (0x300, 16, "c")])
        # innermost-first, as StackWalker.walk() reports frames
        walker = lambda: [0x304, 0x104]  # noqa: E731
        b = CallStackBuilder(sym, walker=walker)
        b.feed_one((BLOCK, 0x100, 0, 0, 0))
        b.feed_one((CALL, 0x104, 0x200, 1, 10))   # a -> b
        b.feed_one((RET, 0x20c, 0x999, 2, 20))    # inexplicable
        assert b.resyncs == 1
        assert b.current_stack() == ("a", "c")

    def test_tail_call_replaces_frame(self):
        sym = SymbolIndex([(0x100, 16, "a"), (0x200, 16, "b"),
                           (0x300, 16, "c")])
        b = CallStackBuilder(sym)
        b.feed_one((BLOCK, 0x100, 0, 0, 0))
        b.feed_one((CALL, 0x104, 0x200, 1, 10))   # a calls b
        b.feed_one((JUMP, 0x208, 0x300, 2, 20))   # b tail-calls c
        assert b.current_stack() == ("a", "c")
        b.feed_one((RET, 0x30c, 0x108, 3, 30))    # c returns to a
        assert b.current_stack() == ("a",)
        spans = b.finish()
        c_span = next(sp for sp in spans if sp.name == "c")
        assert c_span.tail

    def test_block_heat_counts(self):
        _, es, _ = _run_traced(MATMUL, granularity="block")
        heat = block_heat(es.events())
        assert heat
        assert sum(heat.values()) == len(es)


# ---------------------------------------------------------------------------
# Exporters


class TestFlamegraph:
    def _spans(self, prog=MATMUL):
        _, es, _ = _run_traced(prog)
        return call_spans(es.events(), SymbolIndex.from_program(prog))

    def test_top_frame_is_multiply(self):
        folded = folded_stacks(self._spans())
        assert folded
        assert hottest(folded)[-1] == "multiply"

    def test_self_weight_excludes_children(self):
        spans = self._spans()
        folded = folded_stacks(spans)
        main_total = sum(sp.ucycles for sp in spans
                         if sp.stack == ("_start", "main"))
        children = sum(sp.ucycles for sp in spans
                       if len(sp.stack) == 3 and sp.stack[1] == "main")
        assert folded[("_start", "main")] == main_total - children

    def test_format_is_flamegraph_pl_compatible(self):
        text = format_folded(folded_stacks(self._spans()))
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert stack.split(";")[0] == "_start"

    def test_instruction_weight(self):
        spans = self._spans()
        folded = folded_stacks(spans, weight="instructions")
        assert all(w > 0 for w in folded.values())
        with pytest.raises(ValueError):
            folded_stacks(spans, weight="seconds")


class TestPerfetto:
    def _doc(self, snapshot=None):
        _, es, _ = _run_traced(MATMUL)
        spans = call_spans(es.events(),
                           SymbolIndex.from_program(MATMUL))
        return perfetto_trace(spans, events=es.events(),
                              snapshot=snapshot)

    def test_validates_clean(self):
        doc = self._doc()
        assert validate_perfetto(doc) == []
        assert doc["otherData"]["schema"] == "repro.telemetry.events/1"

    def test_b_e_balance_and_nesting(self):
        doc = self._doc()
        depth = 0
        for ev in doc["traceEvents"]:
            if ev["ph"] == "B":
                depth += 1
            elif ev["ph"] == "E":
                depth -= 1
                assert depth >= 0
        assert depth == 0

    def test_json_serialisable(self):
        doc = self._doc()
        round_tripped = json.loads(json.dumps(doc))
        assert round_tripped["traceEvents"]

    def test_pipeline_track_from_timeline_snapshot(self):
        with telemetry.enabled(telemetry.Recorder(timeline=True)) as rec:
            with rec.span("parse.cfg"):
                pass
            snap = rec.snapshot()
        doc = self._doc(snapshot=snap)
        pipeline = [e for e in doc["traceEvents"]
                    if e.get("cat") == "pipeline"]
        assert len(pipeline) == 1
        assert pipeline[0]["name"] == "parse.cfg"
        assert pipeline[0]["ph"] == "X"
        assert pipeline[0]["ts"] >= 0

    def test_validator_catches_imbalance(self):
        doc = {"traceEvents": [
            {"name": "f", "ph": "B", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("unclosed" in p for p in validate_perfetto(doc))
        doc = {"traceEvents": [
            {"name": "f", "ph": "E", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("empty stack" in p for p in validate_perfetto(doc))

    def test_zero_length_spans_stay_nested(self):
        """Back-to-back and zero-length spans must not interleave."""
        from repro.tracing import CallSpan
        spans = [
            CallSpan("outer", 0x100, 0, 0, 0, 0, 10, 100,
                     stack=("outer",)),
            CallSpan("inner", 0x200, 1, 0x104, 5, 50, 5, 50,
                     stack=("outer", "inner")),
        ]
        doc = perfetto_trace(spans)
        assert validate_perfetto(doc) == []


# ---------------------------------------------------------------------------
# API v2 surface


class TestTraceSessionApi:
    def test_binary_edit_trace(self):
        with open_binary(MATMUL) as edit:
            session = edit.trace()
        assert session.stop.reason is StopReason.EXITED
        assert session.hot_functions()[0][0] == "multiply"
        assert validate_perfetto(session.perfetto()) == []

    def test_trace_writes_artifacts(self, tmp_path):
        with open_binary(MATMUL) as edit:
            session = edit.trace()
        perfetto_path = tmp_path / "out.json"
        folded_path = tmp_path / "out.folded"
        session.write_perfetto(perfetto_path)
        session.write_flamegraph(folded_path)
        doc = json.loads(perfetto_path.read_text())
        assert validate_perfetto(doc) == []
        folded = folded_path.read_text()
        assert folded
        top_line = folded.splitlines()[0]
        assert top_line.rsplit(" ", 1)[0].split(";")[-1] == "multiply"

    def test_trace_with_instrumentation_emits_patch_events(self):
        # far patch base forces worst-case trap springboards: every
        # springboard hit must surface as a patch-site event
        options = InstrumentOptions(patch_base=0x7000_0000,
                                    use_dead_registers=False)
        with open_binary(MATMUL, options) as edit:
            fn = edit.function("multiply")
            var = edit.allocate_variable("calls")
            edit.insert(edit.points(fn, PointType.FUNC_ENTRY),
                        IncrementVar(var))
            session = edit.trace()
        assert session.stop.reason is StopReason.EXITED
        calls = session.machine.mem.read_int(var.address, 8)
        assert calls == 2
        if session.machine.trap_redirects:
            assert any(e[0] == PATCH for e in session.events)

    def test_trace_on_closed_edit_raises(self):
        from repro.api import ClosedEditError
        edit = open_binary(MATMUL)
        edit.close()
        with pytest.raises(ClosedEditError):
            edit.trace()

    def test_machine_run_trace_kwarg_detaches(self):
        m = Machine(P550)
        m.load_program(MATMUL)
        es = EventStream()
        m.run(trace=es)
        assert not m.observed
        assert len(es) > 0

    def test_block_granularity_session(self):
        with open_binary(MATMUL) as edit:
            session = edit.trace(granularity="block")
        assert session.heat()
        assert session.machine.traces.compiles > 0
