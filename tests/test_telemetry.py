"""The telemetry subsystem: recorder correctness, the null-recorder
overhead guard, the JSON snapshot schema, and the pipeline threading."""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro import telemetry
from repro.api import open_binary
from repro.codegen.snippets import IncrementVar
from repro.minicc import compile_source
from repro.minicc.workloads import fib_source
from repro.patch.points import PointType
from repro.sim.machine import Machine, StopReason
from repro.telemetry.core import NullRecorder, Recorder


class TestRecorder:
    def test_counters_accumulate(self):
        rec = Recorder()
        rec.count("a.x")
        rec.count("a.x", 4)
        rec.count("a.y", 2)
        snap = rec.snapshot()
        assert snap["counters"] == {"a.x": 5, "a.y": 2}

    def test_gauge_last_value_wins(self):
        rec = Recorder()
        rec.gauge("g", 1.0)
        rec.gauge("g", 3.5)
        assert rec.snapshot()["gauges"]["g"] == 3.5

    def test_span_aggregates_wall_time(self):
        rec = Recorder()
        with rec.span("s"):
            time.sleep(0.002)
        with rec.span("s"):
            pass
        s = rec.snapshot()["spans"]["s"]
        assert s["count"] == 2
        assert s["total_s"] >= 0.002
        assert s["min_s"] <= s["max_s"]
        assert s["total_s"] == pytest.approx(s["min_s"] + s["max_s"])

    def test_record_span_external_duration(self):
        rec = Recorder()
        rec.record_span("s", 1.5)
        rec.record_span("s", 0.5)
        s = rec.snapshot()["spans"]["s"]
        assert (s["count"], s["total_s"], s["min_s"], s["max_s"]) == \
            (2, 2.0, 0.5, 1.5)

    def test_histogram_buckets(self):
        rec = Recorder()
        for v in (1, 2, 3, 100):
            rec.observe("h", v)
        h = rec.snapshot()["histograms"]["h"]
        assert h["count"] == 4
        assert h["sum"] == 106
        assert h["min"] == 1 and h["max"] == 100
        assert sum(h["buckets"].values()) == 4

    def test_thread_safety(self):
        rec = Recorder()

        def hammer():
            for _ in range(5_000):
                rec.count("t")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.snapshot()["counters"]["t"] == 20_000

    def test_clear(self):
        rec = Recorder()
        rec.count("x")
        rec.clear()
        assert rec.snapshot()["counters"] == {}


class TestModuleState:
    def test_disabled_by_default(self):
        assert telemetry.active() is False
        assert isinstance(telemetry.current(), NullRecorder)

    def test_enabled_scope_restores_previous(self):
        before = telemetry.current()
        with telemetry.enabled() as rec:
            assert telemetry.current() is rec
            assert telemetry.active()
        assert telemetry.current() is before

    def test_enabled_restores_on_exception(self):
        before = telemetry.current()
        with pytest.raises(RuntimeError):
            with telemetry.enabled():
                raise RuntimeError("boom")
        assert telemetry.current() is before

    def test_env_var_enables(self, monkeypatch):
        from repro.telemetry import core

        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert isinstance(core._env_default(), Recorder)
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert isinstance(core._env_default(), NullRecorder)

    def test_null_recorder_snapshot_is_empty_and_schemaed(self):
        snap = NullRecorder().snapshot()
        assert snap["schema"] == telemetry.SCHEMA
        assert snap["enabled"] is False
        assert snap["counters"] == {} and snap["spans"] == {}


class TestJsonSchema:
    def test_snapshot_round_trips_through_json(self):
        rec = Recorder()
        rec.count("c.n", 3)
        rec.gauge("g.v", 2.5)
        rec.observe("h.v", 17)
        with rec.span("s.t"):
            pass
        snap = json.loads(rec.to_json())
        assert snap["schema"] == "repro.telemetry/1"
        assert set(snap) == {"schema", "enabled", "counters", "gauges",
                             "spans", "histograms"}
        assert snap["counters"]["c.n"] == 3
        assert set(snap["spans"]["s.t"]) == {"count", "total_s", "min_s",
                                             "max_s"}
        assert set(snap["histograms"]["h.v"]) == {"count", "sum", "min",
                                                  "max", "buckets"}


class _CallCountingNull(NullRecorder):
    """A disabled recorder that tallies every instrument call."""

    def __init__(self):
        self.calls = 0

    def count(self, name, n=1):
        self.calls += 1

    def gauge(self, name, value):
        self.calls += 1

    def observe(self, name, value):
        self.calls += 1

    def record_span(self, name, seconds):
        self.calls += 1

    def span(self, name):
        self.calls += 1
        return super().span(name)


class TestNullRecorderOverhead:
    def test_disabled_pipeline_makes_constant_recorder_calls(self):
        """The hot loops must not report per-instruction when disabled:
        a full compile+parse+instrument+run pipeline is allowed only a
        small, run-count-bound number of recorder touches."""
        tally = _CallCountingNull()
        telemetry.enable(tally)
        try:
            edit = open_binary(compile_source(fib_source(10)))
            c = edit.allocate_variable("c")
            edit.insert(edit.points("fib", PointType.FUNC_ENTRY),
                        IncrementVar(c))
            m, ev = edit.run_instrumented()
        finally:
            telemetry.disable()
        assert ev.reason is StopReason.EXITED
        assert m.instret > 2_000  # the run did real work...
        assert tally.calls < 50   # ...with O(pipeline-stages) reporting

    def test_null_dispatch_cost_is_negligible(self):
        """The disabled-mode pattern (`if rec.enabled:`) must stay in
        nanoseconds; 200k checks in well under a second leaves the <2%
        sim-throughput budget enforced by benchmarks/ intact."""
        rec = telemetry.current()
        assert not rec.enabled
        t0 = time.perf_counter()
        hits = 0
        for _ in range(200_000):
            if rec.enabled:
                hits += 1
        elapsed = time.perf_counter() - t0
        assert hits == 0
        assert elapsed < 1.0  # generous: ~5us per check would still pass


class TestPipelineTelemetry:
    def test_instrumented_pipeline_populates_all_phases(self):
        with telemetry.enabled() as rec:
            with open_binary(compile_source(fib_source(8))) as edit:
                with edit.batch() as b:
                    c = b.allocate_variable("c")
                    b.insert(b.points("fib", PointType.FUNC_ENTRY),
                             IncrementVar(c))
                m, ev = edit.run_instrumented()
        assert ev.reason is StopReason.EXITED
        snap = rec.snapshot()
        counters, spans = snap["counters"], snap["spans"]
        # parse phase: CFG build spans + disambiguation counters
        assert spans["parse.binary"]["total_s"] > 0
        assert spans["parse.function"]["count"] >= 1
        assert counters["parse.functions"] >= 1
        assert any(k.startswith("parse.classify.") for k in counters)
        # liveness phase
        assert spans["liveness.analyze"]["count"] >= 1
        assert counters["liveness.fixpoint_iterations"] >= 1
        # patch phase: springboard ladder + scratch accounting
        assert spans["patch.commit"]["total_s"] > 0
        assert sum(v for k, v in counters.items()
                   if k.startswith("patch.springboard.")) == \
            counters["patch.points"]
        assert counters["patch.scratch.spills_avoided"] == \
            counters["patch.scratch.dead_regs_used"]
        # sim phase: retirement + trace cache + MIPS gauge
        assert counters["sim.instructions_retired"] == m.instret
        assert counters["sim.trace.compiles"] >= 1
        assert counters["sim.trace.hits"] >= 1
        assert snap["gauges"]["sim.mips"] > 0

    def test_binary_edit_telemetry_property(self):
        prog = compile_source(fib_source(6))
        with telemetry.enabled():
            edit = open_binary(prog)
            snap = edit.telemetry
        assert snap["enabled"] is True
        assert snap["counters"]["parse.functions"] >= 1
        # disabled edits expose the (empty) null snapshot
        cold = open_binary(prog)
        assert cold.telemetry["enabled"] is False

    def test_format_report_renders_phases(self):
        with telemetry.enabled() as rec:
            open_binary(compile_source(fib_source(5)))
        text = telemetry.format_report(rec.snapshot())
        assert "== parse" in text
        assert "parse.functions" in text

    def test_format_report_disabled(self):
        text = telemetry.format_report(NullRecorder().snapshot())
        assert "disabled" in text


class TestMachineRunReport:
    def test_report_to_stream(self):
        m = Machine()
        prog = compile_source(fib_source(6))
        from repro.symtab.symtab import Symtab

        Symtab.from_program(prog).load_into(m)
        buf = io.StringIO()
        ev = m.run(report=buf)
        assert ev.reason is StopReason.EXITED
        text = buf.getvalue()
        assert "instructions retired" in text
        assert "trace cache" in text
        assert f"{m.instret:,}" in text

    def test_report_does_not_change_results(self):
        prog = compile_source(fib_source(7))
        from repro.symtab.symtab import Symtab

        m1 = Machine()
        Symtab.from_program(prog).load_into(m1)
        ev1 = m1.run()
        m2 = Machine()
        Symtab.from_program(prog).load_into(m2)
        ev2 = m2.run(report=io.StringIO())
        assert (ev1.reason, ev1.pc, m1.instret, m1.ucycles, m1.x) == \
            (ev2.reason, ev2.pc, m2.instret, m2.ucycles, m2.x)


class TestPercentiles:
    """pow2-bucket percentile estimation (telemetry.report helpers)."""

    @staticmethod
    def _hist(values):
        rec = Recorder()
        for v in values:
            rec.observe("h", v)
        return rec.snapshot()["histograms"]["h"]

    def test_empty_histogram(self):
        assert telemetry.estimate_percentile({}, 50) == 0.0
        assert telemetry.percentiles({}) == {
            "p50": 0.0, "p90": 0.0, "p99": 0.0}

    def test_single_value_every_quantile(self):
        h = self._hist([37])
        for q in (0, 1, 50, 90, 99, 100):
            assert telemetry.estimate_percentile(h, q) == 37

    def test_extremes_clamp_to_observed_min_max(self):
        h = self._hist([3, 100, 1000])
        assert telemetry.estimate_percentile(h, 0) == 3
        assert telemetry.estimate_percentile(h, 100) == 1000

    def test_bucket_edges_power_of_two(self):
        # 8 has bit_length 4 -> bucket le_2^4 (8 <= v < 16); 7 -> le_2^3
        h = self._hist([7, 8])
        assert set(h["buckets"]) == {"le_2^3", "le_2^4"}
        p50 = telemetry.estimate_percentile(h, 50)
        assert 4 <= p50 <= 8
        p99 = telemetry.estimate_percentile(h, 99)
        assert 8 <= p99 <= 16

    def test_zero_values_land_in_bucket_zero(self):
        h = self._hist([0, 0, 0, 16])
        assert telemetry.estimate_percentile(h, 50) == 0.0
        assert telemetry.estimate_percentile(h, 100) == 16

    def test_estimates_within_bucket_bounds(self):
        values = [1, 2, 3, 5, 9, 17, 33, 65, 129, 1025]
        h = self._hist(values)
        for q in (10, 25, 50, 75, 90, 99):
            est = telemetry.estimate_percentile(h, q)
            assert min(values) <= est <= max(values)
            # the true percentile's bucket bounds the estimate: the
            # estimate may never be off by more than one pow2 bucket
            import math
            rank = max(1, math.ceil(q / 100 * len(values)))
            true = sorted(values)[rank - 1]
            assert est <= 2 * true
            assert est >= true / 2

    def test_monotone_in_q(self):
        h = self._hist([1, 3, 7, 20, 100, 5000])
        last = -1.0
        for q in range(0, 101, 5):
            est = telemetry.estimate_percentile(h, q)
            assert est >= last
            last = est

    def test_percentiles_dict_shape(self):
        h = self._hist([10, 20, 30])
        pct = telemetry.percentiles(h, qs=(50, 95))
        assert set(pct) == {"p50", "p95"}

    def test_accepts_int_bucket_keys(self):
        # recorder-internal form ({exp: count}) works too
        h = {"count": 2, "sum": 24, "min": 8, "max": 16,
             "buckets": {4: 1, 5: 1}}
        est = telemetry.estimate_percentile(h, 50)
        assert 8 <= est <= 16

    def test_format_report_shows_percentiles(self):
        with telemetry.enabled() as rec:
            for v in (1, 10, 100, 1000):
                rec.observe("sim.block_len", v)
            text = telemetry.format_report(rec.snapshot())
        assert "p50" in text and "p90" in text and "p99" in text


class TestReportEdgeCases:
    """estimate_percentile / format_report over the degenerate shapes
    cross-worker aggregation can produce: empty histograms, single-
    bucket histograms, and merges of histograms whose bucket sets
    differ.  None of these may raise."""

    @staticmethod
    def _snapshot_with(hist):
        return {"schema": telemetry.SCHEMA, "enabled": True,
                "counters": {}, "gauges": {}, "spans": {},
                "histograms": {"service.op.run.us": hist}}

    def test_empty_histogram_renders(self):
        for empty in ({}, {"count": 0, "buckets": {}}):
            assert telemetry.estimate_percentile(empty, 99) == 0.0
            text = telemetry.format_report(self._snapshot_with(empty))
            assert "service.op.run.us" in text

    def test_single_bucket_histogram_renders(self):
        rec = Recorder()
        rec.observe("h", 5)
        rec.observe("h", 6)
        h = rec.snapshot()["histograms"]["h"]
        assert len(h["buckets"]) == 1
        for q in (0, 50, 99, 100):
            assert 5 <= telemetry.estimate_percentile(h, q) <= 6
        assert telemetry.format_report(self._snapshot_with(h))

    def test_merged_histograms_with_differing_bucket_sets(self):
        from repro.telemetry.aggregate import merge_histograms

        a_rec, b_rec = Recorder(), Recorder()
        for v in (1, 2):
            a_rec.observe("h", v)
        for v in (10_000, 20_000):
            b_rec.observe("h", v)
        a = a_rec.snapshot()["histograms"]["h"]
        b = b_rec.snapshot()["histograms"]["h"]
        assert not set(a["buckets"]) & set(b["buckets"])
        merged = merge_histograms(a, b)
        p50 = telemetry.estimate_percentile(merged, 50)
        p99 = telemetry.estimate_percentile(merged, 99)
        assert 1 <= p50 <= p99 <= 20_000
        text = telemetry.format_report(self._snapshot_with(merged))
        assert "service.op.run.us" in text

    def test_partial_histogram_dict_does_not_raise(self):
        # a merged entry missing min/max/sum (hand-rolled snapshots)
        h = {"count": 3, "buckets": {"le_2^4": 3}}
        telemetry.estimate_percentile(h, 90)
        assert telemetry.format_report(self._snapshot_with(h))


class TestTimelineRecorder:
    def test_timeline_off_by_default(self):
        rec = Recorder()
        with rec.span("parse.x"):
            pass
        assert "timeline" not in rec.snapshot()

    def test_timeline_records_span_instances(self):
        rec = Recorder(timeline=True)
        with rec.span("parse.x"):
            pass
        with rec.span("patch.y"):
            pass
        tl = rec.snapshot()["timeline"]
        assert [t["name"] for t in tl] == ["parse.x", "patch.y"]
        for t in tl:
            assert t["end_s"] >= t["start_s"]

    def test_timeline_bounded(self):
        rec = Recorder(timeline=True, timeline_limit=3)
        for _ in range(10):
            rec.record_interval("sim.run", 0.0, 1.0)
        assert len(rec.snapshot()["timeline"]) == 3
        # aggregates keep counting past the timeline bound
        assert rec.snapshot()["spans"]["sim.run"]["count"] == 10

    def test_clear_drops_timeline(self):
        rec = Recorder(timeline=True)
        rec.record_interval("a.b", 0.0, 1.0)
        rec.clear()
        assert rec.snapshot()["timeline"] == []
