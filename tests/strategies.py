"""Shared hypothesis strategies: random MiniC program generation."""

from __future__ import annotations

from hypothesis import strategies as st

_expr_leaf = st.sampled_from(["x", "y", "1", "2", "3", "7", "-1"])


@st.composite
def minic_expr(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(_expr_leaf)
    op = draw(st.sampled_from(["+", "-", "*", "%", "/"]))
    a = draw(minic_expr(depth=depth - 1))
    b = draw(minic_expr(depth=depth - 1))
    if op in ("%", "/"):
        b = draw(st.sampled_from(["3", "5", "7"]))
    return f"({a} {op} {b})"


@st.composite
def minic_statement(draw, depth, fn_index):
    kind = draw(st.sampled_from(
        ["assign", "if", "loop", "call"] if depth > 0 and fn_index > 0
        else (["assign", "if", "loop"] if depth > 0 else ["assign"])))
    if kind == "assign":
        target = draw(st.sampled_from(["x", "y"]))
        return f"{target} = {draw(minic_expr())};"
    if kind == "if":
        cond = (f"{draw(minic_expr(depth=1))} "
                f"{draw(st.sampled_from(['<', '>', '==', '!=']))} "
                f"{draw(minic_expr(depth=1))}")
        then = draw(minic_statement(depth - 1, fn_index))
        if draw(st.booleans()):
            other = draw(minic_statement(depth - 1, fn_index))
            return f"if ({cond}) {{ {then} }} else {{ {other} }}"
        return f"if ({cond}) {{ {then} }}"
    if kind == "loop":
        n = draw(st.integers(1, 5))
        body = draw(minic_statement(depth - 1, fn_index))
        var = draw(st.sampled_from(["i", "j"]))
        return (f"for (long {var} = 0; {var} < {n}; "
                f"{var} = {var} + 1) {{ {body} }}")
    callee = draw(st.integers(0, fn_index - 1))
    return f"y = y + f{callee}(x + {draw(st.integers(0, 3))});"


@st.composite
def minic_program(draw):
    n_funcs = draw(st.integers(1, 3))
    funcs = []
    for i in range(n_funcs):
        n_stmts = draw(st.integers(1, 3))
        stmts = " ".join(
            draw(minic_statement(2, i)) for _ in range(n_stmts))
        funcs.append(f"""
long f{i}(long x) {{
    long y = x;
    {stmts}
    return y % 1000;
}}""")
    calls = " + ".join(
        f"f{i}({draw(st.integers(0, 9))})" for i in range(n_funcs))
    funcs.append(f"""
long main(void) {{
    long r = {calls};
    print_long(r);
    return r % 256;
}}""")
    return "\n".join(funcs)
