"""ParseAPI tests: traversal parsing, jal/jalr classification (§3.2.3),
jump tables, tail calls, block splitting, loops, gap parsing."""

import pytest

from repro.minicc import (
    Options, compile_source, fib_source, matmul_source, switch_source,
    tailcall_source,
)
from repro.parse import (
    EdgeType, natural_loops, parse_binary, parse_binary_parallel,
)
from repro.riscv import assemble
from repro.symtab import Symtab


def parse_asm(src, **kw):
    return parse_binary(Symtab.from_program(assemble(src)), **kw)


def parse_c(src, opts=None, **kw):
    return parse_binary(Symtab.from_program(compile_source(src, opts)), **kw)


class TestBasicTraversal:
    def test_single_function(self):
        co = parse_asm("""
.type f, @function
f:
  addi a0, a0, 1
  ret
""")
        fn = co.function_by_name("f")
        assert fn is not None
        assert len(fn.blocks) == 1
        assert fn.returns

    def test_conditional_branch_blocks(self):
        co = parse_asm("""
.type f, @function
f:
  beqz a0, zero_case
  addi a0, a0, 1
  ret
zero_case:
  li a0, 99
  ret
""")
        fn = co.function_by_name("f")
        assert len(fn.blocks) == 3
        entry = fn.entry_block
        kinds = {e.kind for e in entry.out_edges}
        assert kinds == {EdgeType.COND_TAKEN, EdgeType.COND_NOT_TAKEN}

    def test_call_discovers_function(self):
        co = parse_asm("""
.type main, @function
main:
  call helper
  ret
helper:
  ret
""")
        main = co.function_by_name("main")
        helper_addr = next(iter(main.callees))
        assert co.function_at(helper_addr) is not None
        entry = main.entry_block
        kinds = [e.kind for e in entry.out_edges]
        assert EdgeType.CALL in kinds and EdgeType.CALL_FT in kinds

    def test_block_split_on_backward_jump(self):
        # Jump lands mid-block: the parser must split it.
        co = parse_asm("""
.type f, @function
f:
  addi a0, a0, 1
  addi a0, a0, 2
target:
  addi a0, a0, 3
  bnez a0, target
  ret
""")
        fn = co.function_by_name("f")
        target_block = next(
            b for b in fn.blocks.values()
            if b.last and b.last.mnemonic == "bne")
        # the split block must start exactly at `target`
        assert any(b.end == target_block.start for b in fn.blocks.values())
        kinds = {e.kind for b in fn.blocks.values() for e in b.out_edges}
        assert EdgeType.FALLTHROUGH in kinds

    def test_in_edges_populated(self):
        co = parse_asm("""
.type f, @function
f:
  beqz a0, out
  addi a0, a0, 1
out:
  ret
""")
        fn = co.function_by_name("f")
        out_block = max(fn.blocks.values(), key=lambda b: b.start)
        assert len(out_block.in_edges) == 2

    def test_ebreak_terminates_block(self):
        co = parse_asm(".type f, @function\nf:\nebreak\nnop\nret\n")
        fn = co.function_by_name("f")
        assert fn.entry_block.out_edges == []


class TestJalJalrClassification:
    """Paper §3.2.3: the same two opcodes mean five different things."""

    def test_jal_with_link_is_call(self):
        co = parse_asm("""
.type f, @function
f:
  jal ra, g
  ret
.type g, @function
g:
  ret
""")
        f = co.function_by_name("f")
        assert any(e.kind is EdgeType.CALL for e in f.entry_block.out_edges)

    def test_jal_x0_intraprocedural_is_jump(self):
        co = parse_asm("""
.type f, @function
f:
  j fwd
  nop
fwd:
  ret
""")
        f = co.function_by_name("f")
        assert any(e.kind is EdgeType.DIRECT for e in f.entry_block.out_edges)

    def test_jal_x0_to_other_function_is_tail_call(self):
        co = parse_asm("""
.type f, @function
f:
  tail g
.type g, @function
g:
  ret
""")
        f = co.function_by_name("f")
        g = co.function_by_name("g")
        assert g.entry in f.tail_callees

    def test_jalr_ra_is_return(self):
        co = parse_asm(".type f, @function\nf:\nret\n")
        f = co.function_by_name("f")
        assert f.returns
        assert any(e.kind is EdgeType.RET
                   for e in f.entry_block.out_edges)

    def test_jalr_alternate_link_register_return(self):
        # x5 (t0) is also a link register by convention.
        co = parse_asm(".type f, @function\nf:\njr t0\n")
        f = co.function_by_name("f")
        # t0-indirect with no link and no resolution: return
        assert f.returns

    def test_auipc_jalr_far_call_resolved(self):
        """The multi-instruction jump idiom from §3.2.3: auipc+jalr must
        be recognised via backward slicing, not left indirect."""
        co = parse_asm("""
.type f, @function
f:
  call.far g
  ret
.type g, @function
g:
  ret
""")
        f = co.function_by_name("f")
        call_edges = [e for b in f.blocks.values() for e in b.out_edges
                      if e.kind is EdgeType.CALL]
        assert len(call_edges) == 1
        assert call_edges[0].target == co.function_by_name("g").entry
        assert call_edges[0].resolved

    def test_auipc_jalr_far_tail_call(self):
        co = parse_asm("""
.type f, @function
f:
  tail.far g
.type g, @function
g:
  ret
""")
        f = co.function_by_name("f")
        g = co.function_by_name("g")
        assert g.entry in f.tail_callees

    def test_li_jalr_constant_jump_resolved(self):
        # Materialised-constant jalr: slicing across lui/addi.
        co = parse_asm("""
.type f, @function
f:
  lui t1, 16
  addi t1, t1, 12
  jr t1
target_pad:
  nop
  ret
""")
        f = co.function_by_name("f")
        # 16<<12 + 12 = 0x1000c -> the nop after the jr
        edges = [e for e in f.entry_block.out_edges]
        assert edges[0].target == 0x1000C
        assert edges[0].kind in (EdgeType.DIRECT, EdgeType.TAILCALL)
        assert edges[0].resolved

    def test_unresolvable_jalr_recorded(self):
        # jalr through a register loaded from runtime-unknown memory.
        co = parse_asm("""
.type f, @function
f:
  jr a0
""")
        f = co.function_by_name("f")
        assert f.unresolved
        assert any(not e.resolved for e in f.entry_block.out_edges)

    def test_indirect_call_keeps_fallthrough(self):
        co = parse_asm("""
.type f, @function
f:
  jalr ra, 0(a0)
  li a0, 1
  ret
""")
        f = co.function_by_name("f")
        kinds = {e.kind for e in f.entry_block.out_edges}
        assert EdgeType.CALL in kinds and EdgeType.CALL_FT in kinds


class TestJumpTables:
    def test_minicc_switch_resolved(self):
        co = parse_c(switch_source())
        d = co.function_by_name("dispatch")
        assert len(d.jump_tables) == 1
        targets = next(iter(d.jump_tables.values()))
        assert len(targets) == 6  # cases 0..5 (+default outside table)
        assert d.unresolved == []
        for t in targets:
            assert d.block_at(t) is not None

    def test_hand_written_jump_table(self):
        co = parse_asm("""
.type f, @function
f:
  li t1, 3
  bgeu a0, t1, dflt
  slli t0, a0, 3
  la t2, table
  add t2, t2, t0
  ld t2, 0(t2)
  jr t2
c0:
  li a0, 10
  ret
c1:
  li a0, 20
  ret
c2:
  li a0, 30
  ret
dflt:
  li a0, 0
  ret
.data
.align 3
table:
  .dword c0
  .dword c1
  .dword c2
""")
        f = co.function_by_name("f")
        assert len(f.jump_tables) == 1
        targets = next(iter(f.jump_tables.values()))
        assert len(targets) == 3

    def test_table_with_bad_entries_rejected(self):
        # Table entries point into data: analysis must fail closed.
        co = parse_asm("""
.type f, @function
f:
  li t1, 2
  bgeu a0, t1, dflt
  slli t0, a0, 3
  la t2, table
  add t2, t2, t0
  ld t2, 0(t2)
  jr t2
dflt:
  ret
.data
.align 3
table:
  .dword 0x1234
  .dword 0x5678
""")
        f = co.function_by_name("f")
        assert not f.jump_tables
        assert f.unresolved


class TestTailCallsAndRecursion:
    def test_minicc_tail_calls(self):
        co = parse_c(tailcall_source(), Options(tail_calls=True))
        odd = co.function_by_name("odd_step")
        even = co.function_by_name("even_step")
        assert even.entry in odd.tail_callees
        assert odd.entry in even.tail_callees

    def test_recursive_call(self):
        co = parse_c(fib_source(10))
        fib = co.function_by_name("fib")
        assert fib.entry in fib.callees


class TestLoops:
    def test_triple_nested_matmul(self):
        co = parse_c(matmul_source(4, 1))
        mult = co.function_by_name("multiply")
        loops = natural_loops(mult)
        assert len(loops) == 3
        depths = sorted(l.depth for l in loops)
        assert depths == [1, 2, 3]
        innermost = max(loops, key=lambda l: l.depth)
        outermost = min(loops, key=lambda l: l.depth)
        assert innermost.body < outermost.body

    def test_simple_while_loop(self):
        co = parse_asm("""
.type f, @function
f:
  li a1, 0
loop:
  addi a1, a1, 1
  blt a1, a0, loop
  ret
""")
        f = co.function_by_name("f")
        loops = natural_loops(f)
        assert len(loops) == 1
        assert loops[0].back_edges

    def test_no_loops_in_straightline(self):
        co = parse_asm(".type f, @function\nf:\naddi a0, a0, 1\nret\n")
        assert natural_loops(co.function_by_name("f")) == []


class TestGapParsing:
    def test_pointer_only_function_found(self):
        """A function reachable only through an unresolvable pointer is a
        gap; the prologue scan must find it."""
        src = """
.type main, @function
main:
  jr a0            # unresolvable: hidden is unreachable by traversal
.align 3
.type hidden, @function
hidden:
  addi sp, sp, -16
  sd ra, 0(sp)
  ld ra, 0(sp)
  addi sp, sp, 16
  ret
"""
        # Strip symbols so `hidden` is genuinely invisible.
        from repro.elf.writer import image_from_program, write_elf
        from repro.riscv import assemble as asm
        p = asm(src)
        image = image_from_program(p)
        image.symbols = [s for s in image.symbols if s.name == "main"]
        st = Symtab.from_bytes(write_elf(image))

        co_nogap = parse_binary(st, gap_parsing=False)
        n_before = len(co_nogap.functions)
        co = parse_binary(st, gap_parsing=True)
        assert len(co.functions) > n_before
        gap_fns = [f for f in co.functions.values()
                   if f.name.startswith("gap_")]
        assert gap_fns
        assert gap_fns[0].returns

    def test_no_spurious_gap_functions_in_full_parse(self):
        co = parse_c(fib_source())
        assert not [f for f in co.functions.values()
                    if f.name.startswith("gap_")]


class TestParallelParse:
    def test_parallel_matches_serial(self):
        st = Symtab.from_program(compile_source(matmul_source(4, 1)))
        serial = parse_binary(st)
        par = parse_binary_parallel(st, workers=4)
        assert set(serial.functions) == set(par.functions)
        for addr in serial.functions:
            s, p = serial.functions[addr], par.functions[addr]
            # Block-splitting granularity may differ with parse order
            # (as in Dyninst); instruction coverage and call structure
            # must not.
            s_cov = {i.address for b in s.blocks.values() for i in b.insns}
            p_cov = {i.address for b in p.blocks.values() for i in b.insns}
            assert s_cov == p_cov, s.name
            assert s.callees == p.callees


class TestWholeProgramProperties:
    def test_matmul_program_fully_resolved(self):
        co = parse_c(matmul_source(4, 1))
        for fn in co.functions.values():
            assert not fn.unresolved, fn.name

    def test_block_instructions_contiguous(self):
        co = parse_c(matmul_source(4, 1))
        for fn in co.functions.values():
            for b in fn.blocks.values():
                pc = b.start
                for insn in b.insns:
                    assert insn.address == pc
                    pc += insn.length
                assert pc == b.end

    def test_every_function_entry_block_exists(self):
        co = parse_c(switch_source())
        for fn in co.functions.values():
            assert fn.entry in fn.blocks
