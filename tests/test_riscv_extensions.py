"""Unit tests for the extension registry and ISA-string handling."""

import pytest

from repro.riscv.extensions import (
    ArchStringError, Extension, ISASubset, PROFILES, RV64G, RV64GC, RV64I,
    all_extensions, get_extension, parse_arch_string, register_extension,
)


class TestRegistry:
    def test_standard_extensions_registered(self):
        for name in ("i", "m", "a", "f", "d", "c", "zicsr", "zifencei"):
            assert get_extension(name).name == name

    def test_unknown_extension_raises(self):
        with pytest.raises(KeyError):
            get_extension("zmagic")

    def test_d_implies_f_implies_zicsr(self):
        sub = ISASubset(64, frozenset({"i", "d"}))
        assert sub.supports("f")
        assert sub.supports("zicsr")

    def test_idempotent_reregistration(self):
        ext = get_extension("m")
        assert register_extension(ext) is ext

    def test_conflicting_reregistration_rejected(self):
        with pytest.raises(ValueError):
            register_extension(Extension("m", "something else"))

    def test_rva23_future_work_extensions_present(self):
        # Paper §3.4: RVA23 support should be a table edit.
        assert get_extension("zicond")
        assert get_extension("zba")
        assert "zicond" in {e.name for e in all_extensions()}


class TestISASubset:
    def test_rv64gc_contents(self):
        for e in ("i", "m", "a", "f", "d", "c", "zicsr", "zifencei"):
            assert RV64GC.supports(e)
        assert not RV64GC.supports("zicond")

    def test_contains_operator(self):
        assert "c" in RV64GC
        assert "c" not in RV64G

    def test_without_drops_dependents(self):
        sub = RV64GC.without("f")
        assert not sub.supports("f")
        assert not sub.supports("d")  # d implies f, so d must go too
        assert sub.supports("m")

    def test_arch_string_canonical_order(self):
        s = RV64GC.arch_string()
        assert s.startswith("rv64imafdc")
        assert "zicsr" in s and "zifencei" in s

    def test_bad_xlen_rejected(self):
        with pytest.raises(ValueError):
            ISASubset(16, frozenset({"i"}))


class TestArchStringParsing:
    def test_parse_simple(self):
        sub = parse_arch_string("rv64imafdc")
        assert sub.xlen == 64
        for e in "imafdc":
            assert sub.supports(e)

    def test_parse_g_shorthand(self):
        sub = parse_arch_string("rv64gc")
        assert sub.supports("m") and sub.supports("zifencei") and sub.supports("c")

    def test_parse_with_versions(self):
        sub = parse_arch_string("rv64i2p1_m2p0_a2p1_f2p2_d2p2_c2p0_zicsr2p0")
        for e in ("i", "m", "a", "f", "d", "c", "zicsr"):
            assert sub.supports(e), e

    def test_parse_multi_letter(self):
        sub = parse_arch_string("rv64imac_zicsr_zifencei_zba1p0")
        assert sub.supports("zba")

    def test_parse_unknown_multi_letter_kept(self):
        # Unknown extensions should not hard-fail analysis.
        sub = parse_arch_string("rv64i_zfuture9p9")
        assert sub.supports("zfuture")

    def test_roundtrip_through_arch_string(self):
        again = parse_arch_string(RV64GC.arch_string())
        assert again.extensions == RV64GC.extensions

    def test_rv32_supported_for_parsing(self):
        assert parse_arch_string("rv32i").xlen == 32

    @pytest.mark.parametrize("bad", ["x86", "rv128i", "rv64", "rv649"])
    def test_bad_strings_rejected(self, bad):
        with pytest.raises(ArchStringError):
            parse_arch_string(bad)

    def test_profiles_table(self):
        assert PROFILES["rv64gc"] is RV64GC
        assert PROFILES["rv64i"] is RV64I
