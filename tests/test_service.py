"""The session service: wire protocol, dispatch, error mapping, and —
the acceptance bar — 8 concurrent clients against one shared Analysis
producing bit-identical results to the in-process API."""

from __future__ import annotations

import os
import socket
import threading

import pytest

from repro.api import open_binary
from repro.codegen.snippets import IncrementVar, Variable
from repro.elf.writer import write_program
from repro.minicc import compile_source
from repro.minicc.workloads import fib_source
from repro.patch.points import PointType
from repro.service import (
    ProtocolError, ServiceClient, ServiceError, SessionServer,
)
from repro.service.protocol import (
    recv_message, send_message, snippet_from_spec,
)
from repro.service.server import options_from_wire
from repro.sim.machine import StopReason


@pytest.fixture(scope="module")
def fib_elf():
    return write_program(compile_source(fib_source(8)))


@pytest.fixture(scope="module")
def reference(fib_elf):
    """In-process result the service must reproduce bit-identically."""
    edit = open_binary(fib_elf)
    c = edit.allocate_variable("calls")
    edit.insert(edit.points("fib", PointType.FUNC_ENTRY),
                IncrementVar(c))
    m, ev = edit.run_instrumented()
    assert ev.reason is StopReason.EXITED
    return {"reason": ev.reason.name, "x": list(m.x),
            "calls": edit.read_variable(m, c),
            "rewritten": edit.rewrite()}


@pytest.fixture()
def server(fib_elf, tmp_path):
    sock = os.fspath(tmp_path / "svc.sock")
    with SessionServer(sock, store=tmp_path / "store",
                       workers=0) as srv:
        yield srv


def _session_cycle(client, elf):
    with client.open(elf) as s:
        s.allocate("calls")
        s.insert("fib", "FUNC_ENTRY",
                 {"kind": "increment", "var": "calls"})
        r = s.run()
        return {"reason": r["reason"], "x": r["x"],
                "calls": r["variables"]["calls"]}


class TestProtocol:
    def test_framing_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"op": "ping", "n": 7})
            assert recv_message(b) == {"op": "ping", "n": 7}
            a.close()
            assert recv_message(b) is None  # clean EOF
        finally:
            b.close()

    def test_mid_frame_eof_is_an_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x01\x00partial")
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)
        finally:
            b.close()

    def test_non_json_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\x04abcd")
            with pytest.raises(ProtocolError, match="not JSON"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_snippet_specs(self):
        v = {"calls": Variable("calls", 0x1000)}
        snip = snippet_from_spec(
            {"kind": "sequence", "items": [
                {"kind": "increment", "var": "calls", "step": 2},
                {"kind": "set", "var": "calls", "value": 9}]}, v)
        assert len(snip.items) == 2
        with pytest.raises(ProtocolError, match="unknown snippet"):
            snippet_from_spec({"kind": "launch_missiles"}, v)
        with pytest.raises(ProtocolError, match="unknown variable"):
            snippet_from_spec({"kind": "increment", "var": "nope"}, v)

    def test_options_from_wire_rejects_unknown_fields(self):
        opts = options_from_wire({"gap_parsing": False})
        assert opts.gap_parsing is False
        with pytest.raises(ProtocolError, match="unknown"):
            options_from_wire({"gap_parsing": False, "turbo": True})


class TestSingleClient:
    def test_ping(self, server):
        with ServiceClient(server.socket_path) as cl:
            resp = cl.ping()
            assert resp["protocol"] == "repro.service/1"
            assert resp["pid"] == os.getpid()  # workers=0: in-process

    def test_full_cycle_matches_in_process(self, server, fib_elf,
                                           reference):
        with ServiceClient(server.socket_path) as cl:
            got = _session_cycle(cl, fib_elf)
        assert got["reason"] == reference["reason"]
        assert got["x"] == reference["x"]
        assert got["calls"] == reference["calls"]

    def test_points_and_functions(self, server, fib_elf):
        with ServiceClient(server.socket_path) as cl, \
                cl.open(fib_elf) as s:
            assert "fib" in s.functions
            addrs = s.points("fib", "FUNC_ENTRY")
            assert len(addrs) == 1

    def test_rewrite_matches_in_process(self, server, fib_elf,
                                        reference):
        with ServiceClient(server.socket_path) as cl, \
                cl.open(fib_elf) as s:
            s.allocate("calls")
            s.insert("fib", "FUNC_ENTRY",
                     {"kind": "increment", "var": "calls"})
            assert s.rewrite() == reference["rewritten"]

    def test_open_by_path(self, server, fib_elf, tmp_path):
        p = tmp_path / "mutatee.elf"
        p.write_bytes(fib_elf)
        with ServiceClient(server.socket_path) as cl, \
                cl.open(p) as s:
            assert "fib" in s.functions

    def test_second_open_shares_the_analysis(self, server, fib_elf):
        with ServiceClient(server.socket_path) as cl:
            with cl.open(fib_elf) as s1, cl.open(fib_elf) as s2:
                assert s1.key == s2.key
                assert s1.id != s2.id
            stats = cl.stats()
            assert stats["analyses"] == [s1.key]


class TestErrorMapping:
    def test_server_errors_carry_their_kind(self, server, fib_elf):
        with ServiceClient(server.socket_path) as cl, \
                cl.open(fib_elf) as s:
            with pytest.raises(ServiceError, match="no function") as ei:
                s.points("no_such_fn")
            assert ei.value.kind == "ApiError"

    def test_unknown_session(self, server):
        with ServiceClient(server.socket_path) as cl:
            with pytest.raises(ServiceError, match="unknown session"):
                cl.request("commit", session="s999")

    def test_unknown_op(self, server):
        with ServiceClient(server.socket_path) as cl:
            with pytest.raises(ServiceError, match="unknown op"):
                cl.request("frobnicate")

    def test_bad_elf_maps_to_api_error(self, server):
        with ServiceClient(server.socket_path) as cl:
            with pytest.raises(ServiceError) as ei:
                cl.open(b"not an elf")
            assert ei.value.kind in ("ApiError", "ElfFormatError")

    def test_connection_survives_errors(self, server, fib_elf,
                                        reference):
        with ServiceClient(server.socket_path) as cl:
            with pytest.raises(ServiceError):
                cl.request("frobnicate")
            # same connection still serves a full session
            got = _session_cycle(cl, fib_elf)
            assert got["calls"] == reference["calls"]


class TestConcurrentClients:
    CLIENTS = 8

    def _hammer(self, sock_path, fib_elf):
        results, errors = [], []

        def one():
            try:
                with ServiceClient(sock_path) as cl:
                    results.append(_session_cycle(cl, fib_elf))
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(repr(exc))

        threads = [threading.Thread(target=one)
                   for _ in range(self.CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        return results

    def test_8_clients_one_shared_analysis(self, server, fib_elf,
                                           reference):
        """workers=0: one address space, so all 8 sessions literally
        borrow one Analysis object — and every result is bit-identical
        to the in-process API."""
        results = self._hammer(server.socket_path, fib_elf)
        assert len(results) == self.CLIENTS
        for got in results:
            assert got["reason"] == reference["reason"]
            assert got["x"] == reference["x"]
            assert got["calls"] == reference["calls"]
        with ServiceClient(server.socket_path) as cl:
            assert len(cl.stats()["analyses"]) == 1

    def test_8_clients_across_worker_processes(self, fib_elf, tmp_path,
                                               reference):
        """workers=2: sessions shard across processes; workers share
        the analysis through the content-addressed store."""
        sock = os.fspath(tmp_path / "mp.sock")
        with SessionServer(sock, store=tmp_path / "store", workers=2):
            results = self._hammer(sock, fib_elf)
        assert len(results) == self.CLIENTS
        for got in results:
            assert got["reason"] == reference["reason"]
            assert got["x"] == reference["x"]
            assert got["calls"] == reference["calls"]
